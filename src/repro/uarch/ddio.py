"""The leaky-DMA experiment (Fig. 9).

Setup mirrors Sec. V-C: a server SoC whose cores forward packets back to
a client.  The NIC DMA-writes 1500B RX packets into the LLC through the
DDIO ways (2 ways of a 128 KiB L2), each forwarding core reads its
packet, writes a TX copy, and the NIC DMA-reads the TX packet out.  Each
core owns a 128-entry descriptor queue.  We sweep the number of
forwarding cores and the bus topology (crossbar vs ring/torus) and
report the NIC's average request-to-response read and write latencies —
the same proxy for cache hit rates the paper's hardware counters give.

The dynamics that make the leak: more forwarding cores -> more packet
buffer footprint in flight -> the 2 DDIO ways thrash -> core reads and
NIC TX reads fall through to DRAM -> processing slows down -> queues
deepen -> more thrash.  The crossbar's single LLC port additionally
saturates past ~6 cores while the banked ring keeps scaling.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .cache import CacheModel, LINE_BYTES
from .dram import DRAMModel
from .interconnect import Fabric, RingFabric, XbarFabric
from .nic import NICModel

XBAR = "xbar"
RING = "ring"

PACKET_BYTES = 1500
LINES_PER_PACKET = (PACKET_BYTES + LINE_BYTES - 1) // LINE_BYTES


@dataclass
class LeakyDMAResult:
    """One point of Fig. 9."""

    n_cores: int
    topology: str
    nic_read_latency_ns: float
    nic_write_latency_ns: float
    rx_drops: int
    packets_forwarded: int
    llc_stats: Dict[str, int] = field(default_factory=dict)
    io_read_hit_rate: float = 0.0
    cpu_hit_rate: float = 0.0


class LeakyDMAExperiment:
    """Event-driven closed-loop packet-forwarding simulation."""

    def __init__(self, n_cores: int, topology: str = XBAR,
                 llc_kib: int = 128, llc_ways: int = 8, ddio_ways: int = 2,
                 descriptors_per_core: int = 128,
                 packet_interval_ns: float = 4500.0,
                 core_compute_ns: float = 2000.0,
                 core_mlp: int = 4,
                 tx_poll_delay_ns: float = 1500.0,
                 packets_per_core: int = 300,
                 seed: int = 1,
                 fabric_kwargs: Optional[Dict] = None):
        self.n_cores = n_cores
        self.topology = topology
        self.llc = CacheModel(llc_kib, llc_ways, ddio_ways)
        self.dram = DRAMModel()
        n_agents = n_cores + 1  # + NIC
        fabric_kwargs = dict(fabric_kwargs or {})
        if topology == XBAR:
            self.fabric: Fabric = XbarFabric(n_ports=n_agents,
                                             **fabric_kwargs)
        elif topology == RING:
            self.fabric = RingFabric(n_stops=max(n_agents, 4),
                                     **fabric_kwargs)
        else:
            raise ValueError(f"unknown topology {topology!r}")
        self.nic = NICModel(n_cores, descriptors_per_core)
        self.packet_interval_ns = packet_interval_ns
        self.core_compute_ns = core_compute_ns
        self.core_mlp = core_mlp
        self.tx_poll_delay_ns = tx_poll_delay_ns
        self.packets_per_core = packets_per_core
        self.descriptors = descriptors_per_core
        self.seed = seed
        self._core_busy = [False] * n_cores
        self._rx_slot = [0] * n_cores
        self._events: List[Tuple[float, int, str, Tuple]] = []
        self._seq = 0

    # -- address layout -----------------------------------------------------------
    #
    # Buffers are padded to 1600B (25 lines) so successive descriptor
    # slots sweep every cache set: 25 is odd, hence coprime with the
    # 256-set index, avoiding the pathological aliasing a 1536B (24-line,
    # = 0 mod set count per 128 slots) layout would create.

    BUFFER_STRIDE = 1600

    def _rx_addr(self, core: int, slot: int) -> int:
        return ((core * 2) * self.descriptors + slot) * self.BUFFER_STRIDE

    def _tx_addr(self, core: int, slot: int) -> int:
        return (((core * 2 + 1) * self.descriptors + slot)
                * self.BUFFER_STRIDE)

    # -- DMA and core transactions ---------------------------------------------------

    def _nic_port(self) -> int:
        return self.n_cores  # NIC sits on the last port/stop

    def _line_write(self, t_issue: float, addr: int) -> float:
        """NIC RX DMA write of one line; returns response time."""
        arrive, bank = self.fabric.traverse(self._nic_port(), t_issue, addr)
        hit = self.llc.io_write(addr, arrive)
        done = arrive + 10.0  # LLC commit
        if not hit:
            # allocating write miss: the victim writeback consumes a DRAM
            # channel slot asynchronously (it delays later *misses*, not
            # this write's response), but the coherence transaction adds
            # a directory round trip to the response.
            self.dram.access(arrive)
            done = arrive + 35.0
        resp = self.fabric.respond(bank, done, self._nic_port())
        self.nic.write_latency.record(resp - t_issue)
        return resp

    def _line_io_read(self, t_issue: float, addr: int) -> float:
        """NIC TX DMA read of one line; returns response time."""
        arrive, bank = self.fabric.traverse(self._nic_port(), t_issue, addr)
        if self.llc.io_read(addr, arrive):
            done = arrive
        else:
            done = self.dram.access(arrive)
        resp = self.fabric.respond(bank, done, self._nic_port())
        self.nic.read_latency.record(resp - t_issue)
        return resp

    def _line_cpu_read(self, core: int, t_issue: float, addr: int) -> float:
        arrive, bank = self.fabric.traverse(core, t_issue, addr)
        if self.llc.cpu_access(addr, arrive):
            done = arrive
        else:
            done = self.dram.access(arrive)
        return self.fabric.respond(bank, done, core)

    def _line_cpu_write(self, core: int, t_issue: float, addr: int) -> float:
        arrive, bank = self.fabric.traverse(core, t_issue, addr)
        self.llc.cpu_access(addr, arrive, write=True)
        return arrive

    # -- event machinery --------------------------------------------------------------

    def _post(self, t: float, kind: str, arg: Tuple) -> None:
        self._seq += 1
        heapq.heappush(self._events, (t, self._seq, kind, arg))

    def run(self) -> LeakyDMAResult:
        """Run the closed-loop simulation and report NIC latencies.

        Every cache-line transaction is its own event, so shared-resource
        cursors (fabric ports, DRAM channel, DMA engines) always see
        requests in time order.
        """
        for core in range(self.n_cores):
            t0 = core * self.packet_interval_ns / self.n_cores
            self._post(t0, "rx_arrive", (core,))
        arrivals = [0] * self.n_cores

        def jitter(core: int, seq: int) -> float:
            # deterministic per-flow jitter, +-12.5% of the interval
            h = (core * 2654435761 + seq * 40503) & 0xFFFF
            return (h / 65535.0 - 0.5) * self.packet_interval_ns / 4.0
        state: Dict[Tuple, List[float]] = {}  # (phase, core, slot) -> [remaining, max_resp]
        issue_gap = 4.0

        while self._events:
            t, _, kind, arg = heapq.heappop(self._events)
            if kind == "rx_arrive":
                (core,) = arg
                arrivals[core] += 1
                if arrivals[core] < self.packets_per_core:
                    gap = self.packet_interval_ns \
                        + jitter(core, arrivals[core])
                    self._post(t + gap, "rx_arrive", (core,))
                if self.nic.rx_queue_full(core):
                    self.nic.rx_drops += 1
                    continue
                slot = self._rx_slot[core]
                self._rx_slot[core] = (slot + 1) % self.descriptors
                state[("rx", core, slot)] = [LINES_PER_PACKET, t]
                self._post(t, "rx_line", (core, slot, 0))
            elif kind == "rx_line":
                core, slot, line = arg
                issue = self.nic.issue_rx_write(t)
                resp = self._line_write(
                    issue, self._rx_addr(core, slot) + line * LINE_BYTES)
                st = state[("rx", core, slot)]
                st[0] -= 1
                st[1] = max(st[1], resp)
                if line + 1 < LINES_PER_PACKET:
                    self._post(issue + self.nic.dma_issue_ns, "rx_line",
                               (core, slot, line + 1))
                elif st[0] == 0:
                    del state[("rx", core, slot)]
                    self.nic.post_rx(core, slot)
                    self._post(st[1], "core_poll", (core,))
            elif kind == "core_poll":
                (core,) = arg
                if self._core_busy[core] or not self.nic.rx_queues[core]:
                    continue
                self._core_busy[core] = True
                slot = self.nic.pop_rx(core)
                state[("rd", core, slot)] = [LINES_PER_PACKET, t]
                self._post(t, "cpu_rd", (core, slot, 0))
            elif kind == "cpu_rd":
                core, slot, line = arg
                resp = self._line_cpu_read(
                    core, t, self._rx_addr(core, slot) + line * LINE_BYTES)
                st = state[("rd", core, slot)]
                st[0] -= 1
                st[1] = max(st[1], resp)
                if line + 1 < LINES_PER_PACKET:
                    self._post(t + issue_gap, "cpu_rd",
                               (core, slot, line + 1))
                elif st[0] == 0:
                    del state[("rd", core, slot)]
                    state[("wr", core, slot)] = [LINES_PER_PACKET, st[1]]
                    self._post(st[1] + self.core_compute_ns, "cpu_wr",
                               (core, slot, 0))
            elif kind == "cpu_wr":
                core, slot, line = arg
                resp = self._line_cpu_write(
                    core, t, self._tx_addr(core, slot) + line * LINE_BYTES)
                st = state[("wr", core, slot)]
                st[0] -= 1
                st[1] = max(st[1], resp)
                if line + 1 < LINES_PER_PACKET:
                    self._post(t + issue_gap, "cpu_wr",
                               (core, slot, line + 1))
                elif st[0] == 0:
                    del state[("wr", core, slot)]
                    self.nic.post_tx(core, slot)
                    self._core_busy[core] = False
                    self._post(st[1], "core_poll", (core,))
                    # the NIC polls TX descriptors with a service delay,
                    # so TX lines sit in the LLC exposed to eviction
                    self._post(st[1] + self.tx_poll_delay_ns,
                               "nic_tx", (core,))
            elif kind == "nic_tx":
                (core,) = arg
                if not self.nic.tx_queues[core]:
                    continue
                slot = self.nic.pop_tx(core)
                state[("tx", core, slot)] = [LINES_PER_PACKET, t]
                self._post(t, "tx_line", (core, slot, 0))
            elif kind == "tx_line":
                core, slot, line = arg
                issue = self.nic.issue_tx_read(t)
                resp = self._line_io_read(
                    issue, self._tx_addr(core, slot) + line * LINE_BYTES)
                st = state[("tx", core, slot)]
                st[0] -= 1
                st[1] = max(st[1], resp)
                if line + 1 < LINES_PER_PACKET:
                    self._post(issue + self.nic.dma_issue_ns, "tx_line",
                               (core, slot, line + 1))
                elif st[0] == 0:
                    del state[("tx", core, slot)]
                    self.nic.packets_forwarded += 1

        return LeakyDMAResult(
            n_cores=self.n_cores,
            topology=self.topology,
            nic_read_latency_ns=self.nic.read_latency.average_ns,
            nic_write_latency_ns=self.nic.write_latency.average_ns,
            rx_drops=self.nic.rx_drops,
            packets_forwarded=self.nic.packets_forwarded,
            llc_stats=dict(self.llc.stats),
            io_read_hit_rate=self.llc.hit_rate("io_read"),
            cpu_hit_rate=self.llc.hit_rate("cpu"),
        )


def sweep(core_counts, topologies=(XBAR, RING),
          **kwargs) -> List[LeakyDMAResult]:
    """Run the Fig. 9 grid."""
    out: List[LeakyDMAResult] = []
    for topo in topologies:
        for n in core_counts:
            out.append(LeakyDMAExperiment(n, topology=topo,
                                          **kwargs).run())
    return out
