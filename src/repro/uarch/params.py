"""Core parameter sets — the paper's Table I.

``LARGE_BOOM`` and ``GC40_BOOM`` are the simulated BOOM variants;
``GC_XEON`` is the Golden Cove Xeon the paper runs Embench on natively.
Derived quantities (functional-unit counts, pipeline depths) follow BOOM
conventions scaled by issue width.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..platform.estimate import core_area_to_luts, estimate_core_area_mm2


@dataclass(frozen=True)
class CoreParams:
    """Out-of-order core configuration (Table I fields + derived)."""

    name: str
    issue_width: int
    rob_entries: int
    int_phys_regs: int
    fp_phys_regs: int
    ld_queue: int
    st_queue: int
    fetch_buffer: int
    l1i_kib: int
    l1d_kib: int
    clock_ghz: float = 3.4
    #: branch-predictor quality: multiplier on workload mispredict rates
    #: (the Xeon's TAGE-class predictor beats BOOM's)
    bpred_factor: float = 1.0
    #: memory-system quality: multiplier on L2/DRAM latencies
    mem_factor: float = 1.0

    # -- derived structure sizes ------------------------------------------------

    @property
    def fetch_width(self) -> int:
        """Instructions fetched per cycle (BOOM: equals decode width)."""
        return self.issue_width

    @property
    def commit_width(self) -> int:
        return self.issue_width

    @property
    def alu_units(self) -> int:
        return self.issue_width

    @property
    def mul_units(self) -> int:
        return max(1, self.issue_width // 3)

    @property
    def mem_ports(self) -> int:
        """Load/store pipelines (BOOM grows these with issue width)."""
        return max(1, self.issue_width // 2)

    @property
    def frontend_depth(self) -> int:
        """Fetch-to-dispatch stages; the branch misprediction refill."""
        return 6 + self.issue_width // 3

    @property
    def mispredict_penalty(self) -> int:
        return self.frontend_depth + 4

    # -- memory latencies (core cycles) -----------------------------------------

    @property
    def l1_hit_cycles(self) -> int:
        return 3

    @property
    def l2_hit_cycles(self) -> int:
        return max(1, round(18 * self.mem_factor))

    @property
    def dram_cycles(self) -> int:
        return max(1, round(110 * self.mem_factor))

    # -- physical estimates -------------------------------------------------------

    def area_mm2(self) -> float:
        """16nm core+L1 synthesis area via the calibrated analytic model."""
        return estimate_core_area_mm2(
            self.issue_width, self.rob_entries, self.int_phys_regs,
            self.fp_phys_regs, self.ld_queue, self.st_queue,
            self.fetch_buffer, self.l1i_kib, self.l1d_kib)

    def fpga_luts(self) -> float:
        return core_area_to_luts(self.area_mm2())


#: Table I, column 1 — the stock LargeBoomConfig.
LARGE_BOOM = CoreParams(
    name="Large BOOM", issue_width=3, rob_entries=96,
    int_phys_regs=100, fp_phys_regs=96, ld_queue=24, st_queue=24,
    fetch_buffer=24, l1i_kib=32, l1d_kib=32)

#: Table I, column 2 — Golden Cove parameters downsized by 40%.
GC40_BOOM = CoreParams(
    name="GC40 BOOM", issue_width=6, rob_entries=216,
    int_phys_regs=115, fp_phys_regs=132, ld_queue=76, st_queue=45,
    fetch_buffer=54, l1i_kib=32, l1d_kib=32)

#: Table I, column 3 — the Golden Cove Xeon itself; its published core
#: area is 9.13 mm^2 (the analytic model is not used for it).
GC_XEON = CoreParams(
    name="GC Xeon", issue_width=6, rob_entries=512,
    int_phys_regs=280, fp_phys_regs=332, ld_queue=192, st_queue=114,
    fetch_buffer=144, l1i_kib=32, l1d_kib=48,
    bpred_factor=0.45, mem_factor=0.6)

#: published area figures (mm^2, 16nm-equivalent) quoted in Sec. V-B
PUBLISHED_AREA_MM2 = {
    "Large BOOM": 0.79,
    "GC40 BOOM": 1.56,
    "GC Xeon": 9.13,
}
