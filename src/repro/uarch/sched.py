"""OS scheduling and cache-affinity cost model.

The Go GC study (Sec. V-D) hinges on how Linux places the runtime's OS
threads onto cores and what that does to the caches of a *weak memory
subsystem* (a BOOM SoC with high coherence costs).  This model prices the
three effects the paper reasons about:

* **wakeup latency** — waking a thread on the same core preempts the
  current thread quickly; waking onto another core pays an IPI plus
  cross-core coherence traffic for the task state,
* **cache affinity** — a thread that keeps running on one core stays
  warm; when its data was last touched by *another* core (GC marking the
  heap, or a migration), its working set must be pulled across the
  coherence fabric, inflating its work,
* **migrations** — the load balancer occasionally moves threads between
  allowed cores, each time costing a cache refill.

Calibrated so a 4-core BOOM SoC at FireSim-scale clock shows millisecond
tails, matching the scale of Fig. 10 (and of the paper's Xeon
cross-check: 28 ms pinned-NUMA vs 42 ms cross-NUMA at p99).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AffinityCostModel:
    """Cost parameters (microseconds unless noted)."""

    #: same-core wakeup: scheduler preemption path
    local_wakeup_us: float = 3.0
    #: cross-core wakeup: IPI + run-queue + task-state coherence misses
    remote_wakeup_us: float = 18.0
    #: work inflation while the thread's data is owned by another core
    #: (BOOM's coherence round trips are expensive)
    coherence_inflation: float = 3.5
    #: work inflation right after a migration (cache refill)
    migration_inflation: float = 6.0
    #: how long the post-migration refill penalty lasts
    migration_window_us: float = 1500.0
    #: average ticks between load-balancer migrations when several cores
    #: are allowed (Linux rebalances periodically)
    migration_period_ticks: int = 350

    def wakeup_latency(self, same_core: bool) -> float:
        return self.local_wakeup_us if same_core else self.remote_wakeup_us

    def work_us(self, base_us: float, data_remote: bool,
                recently_migrated: bool) -> float:
        """Execution time of ``base_us`` of work under cache effects."""
        out = base_us
        if data_remote:
            out *= self.coherence_inflation
        if recently_migrated:
            out *= self.migration_inflation
        return out


@dataclass
class CoreSet:
    """The CPU-affinity mask handed to the Linux scheduler."""

    n_cores: int

    @property
    def single(self) -> bool:
        return self.n_cores == 1
