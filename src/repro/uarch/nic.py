"""NIC model with per-core TX/RX descriptor queues.

The paper modifies FireSim's NIC so each core owns a TX/RX queue pair
(receive-side-scaling style) and adds hardware counters measuring the
average bus request-to-response latency of the NIC's LLC transactions —
those counters are exactly what Fig. 9 plots.  This model keeps the same
structure: per-core descriptor rings, independent RX-write and TX-read
DMA engines, and latency accumulators.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Tuple


@dataclass
class LatencyCounter:
    """Running average of request->response latencies (the paper's
    in-NIC hardware counters)."""

    total_ns: float = 0.0
    samples: int = 0

    def record(self, latency_ns: float) -> None:
        self.total_ns += latency_ns
        self.samples += 1

    @property
    def average_ns(self) -> float:
        return self.total_ns / self.samples if self.samples else 0.0


class NICModel:
    """Per-core queue state plus DMA engine cursors."""

    def __init__(self, n_cores: int, descriptors_per_core: int = 128,
                 dma_issue_ns: float = 4.5):
        self.n_cores = n_cores
        self.descriptors = descriptors_per_core
        self.dma_issue_ns = dma_issue_ns
        self.rx_queues: List[Deque[int]] = [deque() for _ in range(n_cores)]
        self.tx_queues: List[Deque[int]] = [deque() for _ in range(n_cores)]
        self.rx_write_engine_free = 0.0
        self.tx_read_engine_free = 0.0
        self.write_latency = LatencyCounter()
        self.read_latency = LatencyCounter()
        self.rx_drops = 0
        self.packets_forwarded = 0

    def rx_queue_full(self, core: int) -> bool:
        return len(self.rx_queues[core]) >= self.descriptors

    def post_rx(self, core: int, slot: int) -> None:
        self.rx_queues[core].append(slot)

    def pop_rx(self, core: int) -> int:
        return self.rx_queues[core].popleft()

    def post_tx(self, core: int, slot: int) -> None:
        self.tx_queues[core].append(slot)

    def pop_tx(self, core: int) -> int:
        return self.tx_queues[core].popleft()

    def issue_rx_write(self, now: float) -> float:
        """Grab the RX-write DMA engine; returns issue time of this line."""
        start = max(now, self.rx_write_engine_free)
        self.rx_write_engine_free = start + self.dma_issue_ns
        return start

    def issue_tx_read(self, now: float) -> float:
        start = max(now, self.tx_read_engine_free)
        self.tx_read_engine_free = start + self.dma_issue_ns
        return start
