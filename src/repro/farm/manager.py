"""Farm manager: place, deploy, supervise, collect.

:class:`FarmBackend` is the run-farm execution engine — a
:class:`~repro.parallel.ProcessBackend` whose children are *host
agents* (:mod:`repro.farm.deploy`) instead of bare partition workers.
Each run re-places the design onto the farm's live hosts
(:mod:`repro.farm.placement`), forks one agent per placed host, and
supervises through the agents: worker control traffic relays up tagged
with its partition, host liveness is probed with ping/pong, and a dead
or silent agent becomes a :class:`~repro.errors.HostDeadError` — a
``WorkerError`` — after the survivors are aborted and reaped.  That
makes a whole-host loss land on the
:class:`~repro.reliability.supervisor.RunSupervisor`'s ordinary
rollback path: the host is marked dead in the
:class:`~repro.farm.hosts.FarmSpec`, the supervisor restores the last
checkpoint, and the next ``run`` call re-places onto the survivors.

Data plane: partitions sharing a host exchange frames over pipes;
cross-host pairs use the socket transport's packed records (listeners
are bound by the manager pre-fork, exactly like ``transport="socket"``
runs, just with per-pair plans restricted to cross-host links).  The
merge path is the coordinator's — results stay bit-identical to every
other backend.

:class:`FarmManager` is the porcelain the ``repro farm`` CLI drives:
``plan`` prints a placement, ``launch`` wraps a supervised run and
archives the result (placement, per-host FMR, surviving hosts) into
the run registry.
"""

from __future__ import annotations

import logging
import multiprocessing as mp
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import HostDeadError, WorkerError
from ..obsplane.events import (EV_HOST_DEATH, EV_HOST_DEPLOY,
                               EV_HOST_REPLACE)
from ..obsplane.log import get_logger, log_record
from ..parallel.coordinator import ProcessBackend, _WorkerState
from ..parallel.shm import FramePacker
from ..parallel.socket_transport import make_listeners, socket_timeouts
from ..reliability.supervisor import (InjectedCrash, RunSupervisor,
                                      SupervisorReport)
from .deploy import host_agent_main
from .hosts import FarmSpec
from .placement import Placement, place_sim

_LOG = get_logger("repro.farm")


class FarmBackend(ProcessBackend):
    """Distributed execution across simulated hosts.

    Args:
        spec: the farm manifest; placement uses its live hosts and
            prices cross-host links with its link classes.
        colocate: partition groups that must share a host (e.g.
            FAME-5 instance-multithreading candidates).
        host_faults: test hook — ``{host: pass_no}``; the host's agent
            SIGKILLs itself (a whole-host loss) when any of its
            workers reports reaching that wavefront pass.
        Remaining arguments as for
            :class:`~repro.parallel.ProcessBackend`; the data plane is
            pinned to sockets across hosts and pipes within one.
    """

    def __init__(self, spec: FarmSpec,
                 colocate: Iterable[Iterable[str]] = (),
                 flush_interval: int = 16,
                 window: Optional[int] = None,
                 heartbeat_timeout: float = 30.0,
                 worker_faults: Optional[Dict[str, tuple]] = None,
                 host_faults: Optional[Dict[str, int]] = None,
                 socket_family: Optional[str] = None):
        super().__init__(flush_interval=flush_interval, window=window,
                         heartbeat_timeout=heartbeat_timeout,
                         worker_faults=worker_faults,
                         transport="socket",
                         socket_family=socket_family)
        self.spec = spec
        self.colocate = [list(g) for g in colocate]
        self.host_faults = dict(host_faults or {})
        self._backend_label = "farm"
        #: placement of the last (attempted) run
        self.last_placement: Optional[Placement] = None
        #: every placement this backend computed, in order (a re-run
        #: after a host death appends the survivors-only placement)
        self.placements: List[Placement] = []
        #: {host: {fmr component: summed value}} of the last
        #: *completed* run
        self.last_host_fmr: Dict[str, Dict[str, float]] = {}

    # -- plumbing -------------------------------------------------------------

    def _spawn_farm(self, sim, placement: Placement,
                    target_cycles: int, max_passes: int):
        ctx = mp.get_context("fork")
        names = list(sim.partitions)
        order = {name: i for i, name in enumerate(names)}
        part_host = placement.assignment
        host_parts = placement.by_host()
        linked: Dict[str, set] = {name: set() for name in names}
        for link in sim.links:
            a, b = link.src[0], link.dst[0]
            if a != b:
                linked[a].add(b)
                linked[b].add(a)

        # cross-host rendezvous: same pre-fork listener scheme as
        # transport="socket", restricted to pairs that span hosts
        packer = FramePacker.from_sim(sim)
        cross = {name: sorted(p for p in linked[name]
                              if part_host[p] != part_host[name])
                 for name in names}
        owners: Dict[str, int] = {}
        for i, a in enumerate(names):
            backlog = sum(1 for b in names[i + 1:] if b in cross[a])
            if backlog:
                owners[a] = backlog
        listeners, addresses, tmpdir = make_listeners(
            owners, self.socket_family)
        self._listeners = listeners
        self._socket_tmpdir = tmpdir
        connect_timeout, read_timeout = socket_timeouts()
        base_plan = {
            "family": self.socket_family,
            "listeners": listeners,
            "addresses": addresses,
            "connect_timeout": connect_timeout,
            "read_timeout": read_timeout,
        }

        all_conns: List = []

        def pipe():
            recv_conn, send_conn = ctx.Pipe(duplex=False)
            all_conns.extend((recv_conn, send_conn))
            return recv_conn, send_conn

        hosts = sorted(host_parts)
        up = {host: pipe() for host in hosts}
        down = {host: pipe() for host in hosts}
        heartbeat_s = min(2.0, self.heartbeat_timeout / 4)
        corr = getattr(sim, "corr_id", "") or ""
        agents: Dict[str, mp.Process] = {}
        for host in hosts:
            options: Dict[str, dict] = {"__agent__": {
                "die_at_pass": self.host_faults.get(host),
                "corr_id": corr,
                "host": host}}
            for part in host_parts[host]:
                options[part] = {
                    "flush_interval": self.flush_interval,
                    "window": self.window,
                    "heartbeat_s": heartbeat_s,
                    "die": self.worker_faults.get(part),
                    "rings": None,
                    "packer": packer,
                    "socket": dict(base_plan, peers=cross[part]),
                    "corr_id": corr,
                }
            own = {id(down[host][0]), id(up[host][1])}
            unrelated = [c for c in all_conns if id(c) not in own]
            # agents fork the partition workers, so they cannot be
            # daemonic; they exit on manager EOF instead
            agents[host] = ctx.Process(
                target=host_agent_main,
                args=(sim, host, host_parts[host], order,
                      target_cycles, max_passes,
                      down[host][0], up[host][1], unrelated, options),
                name=f"repro-host-{host}", daemon=False)
        for proc in agents.values():
            proc.start()
        events = getattr(sim, "events", None)
        if events is not None and events.enabled:
            for host, proc in agents.items():
                events.emit(EV_HOST_DEPLOY, corr=corr, host=host,
                            agent_pid=proc.pid,
                            parts=",".join(host_parts[host]))
        for host in hosts:
            down[host][0].close()
            up[host][1].close()
        for sock in self._listeners.values():
            try:
                sock.close()
            except OSError:
                pass
        ctl_recv = {host: up[host][0] for host in hosts}
        ctl_send = {host: down[host][1] for host in hosts}
        return agents, ctl_recv, ctl_send

    # -- the supervision loop -------------------------------------------------

    def _run(self, sim, target_cycles, max_passes, crash_cycle):
        from multiprocessing.connection import wait as conn_wait

        placement = place_sim(sim, self.spec, self.colocate)
        # the supervisor calls _run once per checkpoint segment; only
        # record the placement when it actually changed (it does after
        # a host death shrinks the farm)
        if self.last_placement is None \
                or placement.assignment != self.last_placement.assignment:
            self.placements.append(placement)
            events = getattr(sim, "events", None)
            if len(self.placements) > 1 and events is not None \
                    and events.enabled:
                events.emit(
                    EV_HOST_REPLACE,
                    corr=getattr(sim, "corr_id", "") or "",
                    hosts=",".join(sorted(placement.by_host())),
                    assignment=dict(placement.assignment))
        self.last_placement = placement
        agents, ctl_recv, ctl_send = self._spawn_farm(
            sim, placement, target_cycles, max_passes)
        names = list(sim.partitions)
        part_host = placement.assignment
        host_parts = placement.by_host()
        hosts = sorted(host_parts)
        now = time.monotonic()
        states = {name: _WorkerState(
            sim.partitions[name].target_cycle, now)
            for name in names}
        conn_host = {ctl_recv[host]: host for host in hosts}
        sentinel_host = {agents[host].sentinel: host
                         for host in hosts}
        agent_seen = {host: now for host in hosts}
        agent_dead: set = set()
        stopping = False
        aborting: Optional[str] = None
        abort_at = 0.0
        primary_failure: Optional[Tuple[str, str, str, str]] = None
        host_failure: Optional[Tuple[str, str, str]] = None
        tick = min(1.0, max(0.05, self.heartbeat_timeout / 4))
        last_ping = now
        ping_seq = 0

        def broadcast(msg) -> None:
            for host, conn in ctl_send.items():
                if host in agent_dead:
                    continue
                try:
                    conn.send(msg)
                except (BrokenPipeError, OSError):
                    pass

        def host_done(host) -> bool:
            return all(states[p].fragment is not None
                       for p in host_parts[host])

        try:
            while True:
                waitables = [ctl_recv[h] for h in hosts
                             if h not in agent_dead]
                waitables += [s for s, h in sentinel_host.items()
                              if h not in agent_dead]
                ready = conn_wait(waitables, timeout=tick) \
                    if waitables else []
                now = time.monotonic()
                for item in ready:
                    if item in sentinel_host:
                        host = sentinel_host[item]
                        agents[host].join(1.0)
                        self._drain_agent(host, ctl_recv[host],
                                          states, agent_seen, now)
                        agent_dead.add(host)
                        if host_done(host):
                            continue  # clean exit after its fragments
                        for part in host_parts[host]:
                            states[part].dead = True
                            if states[part].exitcode is None:
                                states[part].exitcode = \
                                    agents[host].exitcode
                        if host_failure is None \
                                and not (stopping or aborting):
                            host_failure = (
                                host, "died",
                                f"host agent exited with code "
                                f"{agents[host].exitcode}, taking "
                                f"partition(s) "
                                f"{', '.join(host_parts[host])} down")
                    else:
                        self._drain_agent(conn_host[item], item,
                                          states, agent_seen, now)
                live = (sim.telemetry.live
                        if sim.telemetry.enabled else None)
                if live is not None:
                    live.update(self._live_payload(sim, states))

                if host_failure is not None:
                    host, reason, message = host_failure
                    self.spec.mark_dead(host)
                    self._emit_host_death(sim, host, reason)
                    broadcast(("abort", "fatal"))
                    raise HostDeadError(host, reason, message)

                failure = primary_failure or self._find_failure(
                    names, states, stopping, aborting)
                if failure is not None:
                    primary_failure = failure
                    broadcast(("abort", "fatal"))
                    raise self._failure_error(failure)

                # liveness: workers are checked individually (their
                # heartbeats relay through the agent), agents through
                # the ping/pong probe
                for name in names:
                    state = states[name]
                    if not state.dead and state.fragment is None \
                            and now - state.last_seen \
                            > self.heartbeat_timeout:
                        broadcast(("abort", "fatal"))
                        raise WorkerError(
                            name, "heartbeat-timeout",
                            f"no message for more than "
                            f"{self.heartbeat_timeout}s")
                if now - last_ping >= tick:
                    ping_seq += 1
                    broadcast(("ping", ping_seq))
                    last_ping = now
                for host in hosts:
                    if host in agent_dead or host_done(host):
                        continue
                    if now - agent_seen[host] > self.heartbeat_timeout:
                        self.spec.mark_dead(host)
                        self._emit_host_death(sim, host,
                                              "heartbeat-timeout")
                        broadcast(("abort", "fatal"))
                        raise HostDeadError(
                            host, "heartbeat-timeout",
                            f"no message from the host agent for "
                            f"more than {self.heartbeat_timeout}s")

                if aborting == "deadlock":
                    if all(s.postmortem is not None
                           for s in states.values()):
                        raise self._deadlock_error(sim, states)
                    if now - abort_at > self.heartbeat_timeout:
                        silent = [n for n in names
                                  if states[n].postmortem is None]
                        raise WorkerError(
                            silent[0], "heartbeat-timeout",
                            "no deadlock postmortem within "
                            f"{self.heartbeat_timeout}s")
                    continue

                min_frontier = min(s.frontier
                                   for s in states.values())
                if not stopping and min_frontier >= target_cycles:
                    fence = max(s.max_reported
                                for s in states.values()) + 1
                    broadcast(("stop", fence))
                    stopping = True
                if stopping:
                    if all(s.fragment is not None
                           for s in states.values()):
                        break
                    continue
                if crash_cycle is not None \
                        and min_frontier >= crash_cycle:
                    broadcast(("abort", "crash"))
                    raise InjectedCrash(crash_cycle)

                k_star = self._deadlock_pass(states)
                if k_star is not None:
                    broadcast(("abort", "deadlock"))
                    aborting = "deadlock"
                    abort_at = now
        finally:
            broadcast(("shutdown",))
            self._cleanup(agents, ctl_recv, ctl_send)

        fragments = {n: states[n].fragment for n in names}
        self.last_wire_stats = {
            n: frag.get("wire_stats", {})
            for n, frag in fragments.items()}
        self.last_worker_corr = {
            n: frag.get("corr", "")
            for n, frag in fragments.items()}
        sim.last_worker_corr = dict(self.last_worker_corr)
        self._merge(sim, fragments)
        sim.last_run_backend = self._backend_label
        self._finish_telemetry(sim)
        result = sim.result()
        self.last_host_fmr = self._host_fmr(result, part_host)
        return result

    def _emit_host_death(self, sim, host: str, reason: str) -> None:
        events = getattr(sim, "events", None)
        if events is not None and events.enabled:
            events.emit(EV_HOST_DEATH,
                        corr=getattr(sim, "corr_id", "") or "",
                        host=host, reason=reason)
        log_record(_LOG, EV_HOST_DEATH,
                   corr=getattr(sim, "corr_id", "") or "",
                   host=host, reason=reason,
                   level=logging.WARNING)

    def _drain_agent(self, host, conn, states, agent_seen, now) -> None:
        while True:
            try:
                if not conn.poll():
                    return
                msg = conn.recv()
            except (EOFError, OSError):
                return  # the sentinel handler owns death accounting
            agent_seen[host] = now
            kind = msg[0]
            if kind == "w":
                self._apply_msg(states[msg[1]], msg[2], now)
            elif kind == "dead":
                state = states[msg[1]]
                state.dead = True
                if msg[2] is not None:
                    state.exitcode = msg[2]
            # "pong" carries no payload beyond refreshing agent_seen

    @staticmethod
    def _host_fmr(result, part_host) -> Dict[str, Dict[str, float]]:
        """Sum the per-partition FMR breakdown by hosting host."""
        host_fmr: Dict[str, Dict[str, float]] = {}
        breakdown = result.detail.get("fmr_breakdown", {})
        for part, components in breakdown.items():
            host = part_host.get(part)
            if host is None:
                continue
            agg = host_fmr.setdefault(host, {})
            for component, value in components.items():
                agg[component] = agg.get(component, 0.0) + value
        return host_fmr


@dataclass
class FarmReport:
    """Everything one ``FarmManager.launch`` produced."""

    supervisor: SupervisorReport
    #: every distinct placement used, in order (>1 after host deaths)
    placements: List[Placement] = field(default_factory=list)
    host_fmr: Dict[str, Dict[str, float]] = field(default_factory=dict)
    live_hosts: List[str] = field(default_factory=list)
    dead_hosts: List[str] = field(default_factory=list)
    archive_path: Optional[object] = None

    @property
    def result(self):
        return self.supervisor.result

    @property
    def placement(self) -> Optional[Placement]:
        return self.placements[-1] if self.placements else None

    def to_extra(self) -> dict:
        """The ``extra={"farm": ...}`` payload for the run registry."""
        return {
            "placements": [p.to_dict() for p in self.placements],
            "host_fmr": self.host_fmr,
            "live_hosts": list(self.live_hosts),
            "dead_hosts": list(self.dead_hosts),
            "rollbacks": self.supervisor.rollbacks,
        }


class FarmManager:
    """Porcelain for the ``repro farm`` CLI and programmatic callers.

    Args:
        build: zero-argument simulation factory (the supervisor
            rebuilds through it after a rollback).
        spec: the farm manifest.
        colocate: see :class:`FarmBackend`.
        checkpoint_every / max_rollbacks: supervisor knobs.
        host_faults / worker_faults: fault-injection hooks.
    """

    def __init__(self, build, spec: FarmSpec,
                 colocate: Iterable[Iterable[str]] = (),
                 checkpoint_every: int = 100,
                 max_rollbacks: int = 3,
                 flush_interval: int = 16,
                 heartbeat_timeout: float = 30.0,
                 host_faults: Optional[Dict[str, int]] = None,
                 worker_faults: Optional[Dict[str, tuple]] = None,
                 socket_family: Optional[str] = None):
        self.build = build
        self.spec = spec
        self.colocate = [list(g) for g in colocate]
        self.checkpoint_every = checkpoint_every
        self.max_rollbacks = max_rollbacks
        self.backend = FarmBackend(
            spec, colocate=colocate,
            flush_interval=flush_interval,
            heartbeat_timeout=heartbeat_timeout,
            host_faults=host_faults,
            worker_faults=worker_faults,
            socket_family=socket_family)

    def plan(self, sim=None) -> Placement:
        """Place (a fresh build of) the design without running it."""
        if sim is None:
            sim = self.build()
        return place_sim(sim, self.spec, self.colocate)

    def launch(self, target_cycles: int, registry=None,
               run_name: str = "farm") -> FarmReport:
        """Run to ``target_cycles`` under supervision; survives host
        deaths by rollback + re-placement onto the survivors."""
        supervisor = RunSupervisor(
            self.build,
            checkpoint_every=self.checkpoint_every,
            max_rollbacks=self.max_rollbacks,
            backend=self.backend)
        sup_report = supervisor.run(target_cycles)
        report = FarmReport(
            supervisor=sup_report,
            placements=list(self.backend.placements),
            host_fmr=dict(self.backend.last_host_fmr),
            live_hosts=[h.name for h in self.spec.live_hosts()],
            dead_hosts=sorted(n for n, h in self.spec.hosts.items()
                              if not h.alive))
        if registry is not None:
            report.archive_path = registry.archive(
                sup_report.result, name=run_name, backend="farm",
                config={"hosts": self.spec.to_dict(),
                        "target_cycles": target_cycles,
                        "colocate": self.colocate},
                extra={"farm": report.to_extra()})
        return report
