"""Virtual-host deployment: one agent process per simulated host.

A farm run is a two-level process tree.  The manager
(:class:`~repro.farm.manager.FarmBackend`) forks one *host agent* per
placed host — the software stand-in for a run-farm machine — and each
agent forks one partition worker per partition placed on its host.
Because the agent is a real OS process, killing it takes every one of
its workers down exactly the way a machine loss would: workers see
their control pipe EOF and exit, cross-host peers see their sockets
close, and the manager sees the agent's sentinel fire.

Inside a host, workers exchange frames over plain pipes (same-box
transport); across hosts they use the socket transport's packed
records — the same split FireAxe makes between intra-host FPGA links
and the network.  The agent is otherwise a pure relay:

* worker -> manager: every control message forwards as
  ``("w", partition, msg)``; a worker death as
  ``("dead", partition, exitcode)``.
* manager -> workers: ``("stop", fence)`` / ``("abort", reason)``
  broadcast down unchanged; ``("ping", seq)`` answers with
  ``("pong", seq)`` (the manager's host-liveness probe);
  ``("shutdown",)`` ends the relay loop after a completed run.

Fault injection for tests/demos: ``die_at_pass`` makes the agent
``SIGKILL`` itself the moment any of its workers reports reaching that
wavefront pass — a whole-host loss mid-run.
"""

from __future__ import annotations

import os
import signal
from multiprocessing.connection import wait as _conn_wait
from typing import Dict, List

from ..obsplane.corr import propagate_corr_id
from ..obsplane.log import get_logger, log_record
from ..parallel.worker import worker_main


def host_agent_main(sim, host: str, parts: List[str], order,
                    target_cycles: int, max_passes: int,
                    ctl_recv, ctl_send, unrelated_conns,
                    options: Dict[str, dict]) -> None:
    """Entry point of a forked host agent.

    Args:
        host: this virtual host's name.
        parts: partitions placed here (each gets one worker).
        ctl_recv / ctl_send: the manager-facing control pipe ends.
        unrelated_conns: other agents' pipe ends to close (fork
            hygiene — EOF propagation needs every stray copy closed).
        options: per-partition worker option dicts; the agent-level
            keys ride in ``options["__agent__"]`` (``die_at_pass``).
    """
    import multiprocessing as mp
    ctx = mp.get_context("fork")
    for conn in unrelated_conns:
        try:
            conn.close()
        except OSError:
            pass
    agent_options = options.get("__agent__", {})
    die_at_pass = agent_options.get("die_at_pass")
    # adopt the request's correlation id before forking workers: they
    # inherit the environment, and anything this agent logs carries it
    corr_id = agent_options.get("corr_id", "")
    if corr_id:
        propagate_corr_id(corr_id)
    log_record(get_logger("repro.farm.agent"), "agent_start",
               corr=corr_id, host=host, parts=",".join(parts))

    # intra-host data plane: one pipe pair per linked pair living
    # entirely on this host (cross-host pairs are in the socket plans)
    local = set(parts)
    linked: Dict[str, set] = {p: set() for p in parts}
    for link in sim.links:
        a, b = link.src[0], link.dst[0]
        if a != b and a in local and b in local:
            linked[a].add(b)
            linked[b].add(a)
    own_conns: List = []
    data: Dict[str, Dict[str, tuple]] = {p: {} for p in parts}
    ordered = sorted(parts, key=order.__getitem__)
    for i, a in enumerate(ordered):
        for b in ordered[i + 1:]:
            if b not in linked[a]:
                continue
            a2b_recv, a2b_send = ctx.Pipe(duplex=False)
            b2a_recv, b2a_send = ctx.Pipe(duplex=False)
            own_conns.extend((a2b_recv, a2b_send, b2a_recv, b2a_send))
            data[a][b] = (b2a_recv, a2b_send)
            data[b][a] = (a2b_recv, b2a_send)
    up: Dict[str, tuple] = {}
    down: Dict[str, tuple] = {}
    for part in parts:
        up[part] = ctx.Pipe(duplex=False)
        down[part] = ctx.Pipe(duplex=False)
        own_conns.extend(up[part])
        own_conns.extend(down[part])

    procs: Dict[str, mp.Process] = {}
    for part in parts:
        keep = set()
        for conns in data[part].values():
            keep.update(id(c) for c in conns)
        keep.add(id(down[part][0]))
        keep.add(id(up[part][1]))
        stray = [c for c in own_conns if id(c) not in keep]
        procs[part] = ctx.Process(
            target=worker_main,
            args=(sim, part, order, target_cycles, max_passes,
                  data[part], down[part][0], up[part][1],
                  stray, options[part]),
            name=f"repro-worker-{part}", daemon=True)
    for proc in procs.values():
        proc.start()
    events = getattr(sim, "events", None)
    if events is not None and events.enabled:
        for part, proc in procs.items():
            events.emit("worker_spawn", corr=corr_id, part=part,
                        host=host, worker_pid=proc.pid,
                        backend="farm")
    for conns in data.values():
        for recv_conn, send_conn in conns.values():
            recv_conn.close()
            send_conn.close()
    for part in parts:
        down[part][0].close()
        up[part][1].close()
    # every rendezvous listener was inherited across two forks; the
    # workers own their copies now, the agent's are strays (all the
    # per-partition plans share one listener map)
    plan0 = options[parts[0]].get("socket") if parts else None
    for sock in (plan0 or {}).get("listeners", {}).values():
        try:
            sock.close()
        except OSError:
            pass

    wrecv = {up[part][0]: part for part in parts}
    wsend = {part: down[part][1] for part in parts}
    sentinels = {procs[part].sentinel: part for part in parts}
    dead = set()

    def forward_down(msg) -> None:
        for part, conn in wsend.items():
            if part in dead:
                continue
            try:
                conn.send(msg)
            except (BrokenPipeError, OSError):
                pass

    def send_up(msg) -> None:
        try:
            ctl_send.send(msg)
        except (BrokenPipeError, OSError):
            os._exit(3)  # manager vanished

    while True:
        waitables = [ctl_recv]
        waitables += [c for c, p in wrecv.items() if p not in dead]
        waitables += [s for s, p in sentinels.items() if p not in dead]
        for item in _conn_wait(waitables):
            if item in sentinels:
                part = sentinels[item]
                procs[part].join(1.0)
                # flush any parting messages before reporting the death
                conn = up[part][0]
                _relay_all(conn, part, send_up, die_at_pass)
                dead.add(part)
                if events is not None and events.enabled:
                    events.emit("worker_exit", corr=corr_id,
                                part=part, host=host,
                                worker_pid=procs[part].pid,
                                exitcode=procs[part].exitcode)
                send_up(("dead", part, procs[part].exitcode))
            elif item is ctl_recv:
                try:
                    if not ctl_recv.poll():
                        continue
                    msg = ctl_recv.recv()
                except (EOFError, OSError):
                    os._exit(3)  # manager vanished; workers follow suit
                kind = msg[0]
                if kind in ("stop", "abort"):
                    forward_down(msg)
                elif kind == "ping":
                    send_up(("pong", msg[1]))
                elif kind == "shutdown":
                    os._exit(0)
            else:
                part = wrecv[item]
                if not _relay_all(item, part, send_up, die_at_pass):
                    dead.add(part)
                    send_up(("dead", part, None))


def _relay_all(conn, part: str, send_up, die_at_pass) -> bool:
    """Forward every pending message of one worker; False on EOF.
    Fires the injected host fault when a progress report crosses the
    trigger pass."""
    while True:
        try:
            if not conn.poll():
                return True
            msg = conn.recv()
        except (EOFError, OSError):
            return False
        if die_at_pass is not None and msg[0] == "progress" \
                and any(entry[0] >= die_at_pass for entry in msg[2]):
            os.kill(os.getpid(), signal.SIGKILL)
        send_up(("w", part, msg))
