"""Declarative run-farm host specifications.

FireSim-style deployment starts from a description of the machines the
simulation may land on; FireAxe inherits that shape for partitioned
runs (which FPGAs sit in which box, which boxes share a QSFP cable,
which only reach each other through the datacenter network).  This
module is the software reproduction's version of that manifest:

* :class:`HostSpec` — one (virtual) host: a name, a core budget (one
  partition worker occupies one core) and a memory budget.
* :class:`FarmSpec` — the farm: the host list plus the *link class*
  between every host pair, resolved to the calibrated
  :class:`~repro.platform.TransportModel` the placement passes price
  cross-host traffic with (``qsfp`` / ``pcie`` / ``host-pcie`` /
  ``ethernet``).  Pairs without an explicit entry use the farm's
  default class (``ethernet`` — the only transport that reaches
  arbitrary host pairs).

Specs round-trip through a small JSON document (see
``examples/farm_hosts.json``) so `repro farm` can take ``--hosts``
from a file; malformed documents raise a typed
:class:`~repro.errors.FarmError` naming the offending field.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..errors import FarmError
from ..platform import (ETHERNET_100G, HOST_PCIE, PCIE_P2P, QSFP_AURORA,
                        TransportModel)

HOSTS_FORMAT = "fireaxe-repro-farm-hosts"
HOSTS_VERSION = 1

#: link-class name -> calibrated transport model (same table the CLI's
#: ``--transport`` flag uses for intra-simulation links)
LINK_CLASSES: Dict[str, TransportModel] = {
    "qsfp": QSFP_AURORA,
    "pcie": PCIE_P2P,
    "host-pcie": HOST_PCIE,
    "ethernet": ETHERNET_100G,
}

DEFAULT_LINK_CLASS = "ethernet"


@dataclass
class HostSpec:
    """One simulated host of the run farm."""

    name: str
    cores: int = 4
    memory_gb: float = 16.0
    #: flips to False when the farm manager reaps the host's agent;
    #: dead hosts are excluded from re-placement after a rollback
    alive: bool = True

    def to_dict(self) -> dict:
        return {"name": self.name, "cores": self.cores,
                "memory_gb": self.memory_gb}


def _pair(a: str, b: str) -> Tuple[str, str]:
    return (a, b) if a <= b else (b, a)


class FarmSpec:
    """The farm manifest: hosts plus per-pair link classes.

    Args:
        hosts: the host list (validated: non-empty, unique names,
            positive core counts).
        default_link: link class assumed for host pairs without an
            explicit entry.
        links: ``{(a, b): class_name}`` overrides (unordered pairs).
    """

    def __init__(self, hosts: List[HostSpec],
                 default_link: str = DEFAULT_LINK_CLASS,
                 links: Optional[Dict[Tuple[str, str], str]] = None):
        if not hosts:
            raise FarmError("a farm needs at least one host")
        names = [h.name for h in hosts]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise FarmError(f"duplicate host name(s): {dupes}")
        for host in hosts:
            if not host.name:
                raise FarmError("a host needs a non-empty name")
            if host.cores < 1:
                raise FarmError(
                    f"host {host.name!r}: cores must be >= 1 "
                    f"(got {host.cores})")
            if host.memory_gb <= 0:
                raise FarmError(
                    f"host {host.name!r}: memory_gb must be positive")
        if default_link not in LINK_CLASSES:
            raise FarmError(
                f"unknown default link class {default_link!r}; valid: "
                f"{', '.join(sorted(LINK_CLASSES))}")
        self.hosts: Dict[str, HostSpec] = {h.name: h for h in hosts}
        self.default_link = default_link
        self._links: Dict[Tuple[str, str], str] = {}
        for (a, b), cls in (links or {}).items():
            if a not in self.hosts or b not in self.hosts:
                raise FarmError(
                    f"link ({a!r}, {b!r}) names an unknown host")
            if a == b:
                raise FarmError(
                    f"link ({a!r}, {b!r}) connects a host to itself")
            if cls not in LINK_CLASSES:
                raise FarmError(
                    f"link ({a!r}, {b!r}): unknown class {cls!r}; "
                    f"valid: {', '.join(sorted(LINK_CLASSES))}")
            self._links[_pair(a, b)] = cls

    # -- queries ------------------------------------------------------------

    def link_class(self, a: str, b: str) -> str:
        return self._links.get(_pair(a, b), self.default_link)

    def link_model(self, a: str, b: str) -> TransportModel:
        """Transport model pricing traffic between hosts ``a``/``b``."""
        return LINK_CLASSES[self.link_class(a, b)]

    def live_hosts(self) -> List[HostSpec]:
        """Hosts available for placement, in name order."""
        return [self.hosts[n] for n in sorted(self.hosts)
                if self.hosts[n].alive]

    def mark_dead(self, name: str) -> None:
        if name in self.hosts:
            self.hosts[name].alive = False

    def total_cores(self) -> int:
        return sum(h.cores for h in self.live_hosts())

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "format": HOSTS_FORMAT,
            "version": HOSTS_VERSION,
            "hosts": [self.hosts[n].to_dict()
                      for n in sorted(self.hosts)],
            "default_link": self.default_link,
            "links": [{"a": a, "b": b, "class": cls}
                      for (a, b), cls in sorted(self._links.items())],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FarmSpec":
        if not isinstance(payload, dict):
            raise FarmError("host spec must be a JSON object")
        if payload.get("format", HOSTS_FORMAT) != HOSTS_FORMAT:
            raise FarmError(
                f"not a farm host spec (format="
                f"{payload.get('format')!r})")
        hosts = []
        for entry in payload.get("hosts", []):
            if isinstance(entry, str):
                entry = {"name": entry}
            if not isinstance(entry, dict) or "name" not in entry:
                raise FarmError(
                    f"host entry {entry!r} needs a 'name'")
            try:
                hosts.append(HostSpec(
                    name=str(entry["name"]),
                    cores=int(entry.get("cores", 4)),
                    memory_gb=float(entry.get("memory_gb", 16.0))))
            except (TypeError, ValueError) as exc:
                raise FarmError(
                    f"host entry {entry.get('name')!r}: {exc}")
        links = {}
        for entry in payload.get("links", []):
            if not isinstance(entry, dict) \
                    or not {"a", "b", "class"} <= set(entry):
                raise FarmError(
                    f"link entry {entry!r} needs 'a', 'b' and 'class'")
            links[(str(entry["a"]), str(entry["b"]))] = \
                str(entry["class"])
        return cls(hosts,
                   default_link=payload.get("default_link",
                                            DEFAULT_LINK_CLASS),
                   links=links)

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "FarmSpec":
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise FarmError(f"cannot read host spec {path}: {exc}")
        return cls.from_dict(payload)
