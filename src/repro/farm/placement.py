"""Partition-to-host placement passes (FireSim topology style).

FireSim separates *what* is simulated from *where* it runs with a
sequence of topology passes over a declarative host manifest; FireAxe
layers partitioned targets onto that machinery.  This module reproduces
the shape for the software farm: given the partition link graph and a
:class:`~repro.farm.hosts.FarmSpec`, produce an assignment of
partitions to hosts that

* respects every host's core budget (one partition worker per core),
* never splits a *co-location group* (e.g. FAME-5 instance-
  multithreading candidates, whose members must share an FPGA — here,
  a host),
* minimizes the modelled cross-host cut cost: for every link whose
  endpoints land on different hosts, the per-token wire time of the
  host pair's link class at the link's channel width
  (:meth:`~repro.platform.TransportModel.wire_ns`).

The optimizer is a deterministic greedy seed (heaviest nodes first,
each to the cheapest feasible host) refined by a bounded
steepest-descent move search — small farms reach the optimum, large
ones get a good cut in O(nodes * hosts * rounds).  Infeasible inputs
(more partitions than live cores, a group larger than every host)
raise :class:`~repro.errors.PlacementError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import PlacementError
from .hosts import FarmSpec

#: one cross-partition link: (src partition, dst partition, width bits)
LinkDesc = Tuple[str, str, int]


@dataclass
class Placement:
    """One partition-to-host assignment and its modelled cut."""

    assignment: Dict[str, str]
    #: summed per-token wire time of every cross-host link (ns)
    cut_cost_ns: float = 0.0
    #: how many links cross a host boundary
    cross_links: int = 0
    #: the co-location groups the placement honoured
    groups: List[List[str]] = field(default_factory=list)

    def hosts_used(self) -> List[str]:
        return sorted(set(self.assignment.values()))

    def by_host(self) -> Dict[str, List[str]]:
        out: Dict[str, List[str]] = {}
        for part in sorted(self.assignment):
            out.setdefault(self.assignment[part], []).append(part)
        return out

    def to_dict(self) -> dict:
        return {
            "assignment": dict(sorted(self.assignment.items())),
            "by_host": self.by_host(),
            "cut_cost_ns": self.cut_cost_ns,
            "cross_links": self.cross_links,
            "groups": [list(g) for g in self.groups],
        }


def _merge_groups(names: Sequence[str],
                  colocate: Iterable[Iterable[str]]) -> List[List[str]]:
    """Validated, overlap-merged co-location groups + singletons, each
    ordered by first appearance in ``names``."""
    index = {name: i for i, name in enumerate(names)}
    parent = {name: name for name in names}

    def find(x: str) -> str:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for group in colocate:
        members = list(group)
        for member in members:
            if member not in index:
                raise PlacementError(
                    f"co-location group names unknown partition "
                    f"{member!r}")
        for a, b in zip(members, members[1:]):
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[rb] = ra
    clusters: Dict[str, List[str]] = {}
    for name in names:
        clusters.setdefault(find(name), []).append(name)
    return sorted(clusters.values(), key=lambda g: index[g[0]])


def place(names: Sequence[str], links: Sequence[LinkDesc],
          spec: FarmSpec,
          colocate: Iterable[Iterable[str]] = ()) -> Placement:
    """Assign ``names`` to ``spec``'s live hosts.

    Args:
        names: partition names (global partition order).
        links: cross-partition links as ``(src, dst, width_bits)``.
        spec: the farm manifest; only live hosts are used.
        colocate: groups that must share a host (overlapping groups
            merge).
    """
    names = list(names)
    if not names:
        raise PlacementError("nothing to place: no partitions")
    hosts = spec.live_hosts()
    if not hosts:
        raise PlacementError("no live hosts left in the farm")
    if len(names) > sum(h.cores for h in hosts):
        raise PlacementError(
            f"{len(names)} partitions exceed the farm's "
            f"{sum(h.cores for h in hosts)} live cores "
            f"({len(hosts)} host(s))")
    groups = _merge_groups(names, colocate)
    max_cores = max(h.cores for h in hosts)
    for group in groups:
        if len(group) > max_cores:
            raise PlacementError(
                f"co-location group {group} needs {len(group)} cores "
                f"on one host; the largest live host has {max_cores}")

    # group-level link graph: edges carry the widths of every member
    # link, so the cut cost of a candidate host pair is computable on
    # the fly (wire time depends on which hosts the ends land on)
    owner = {name: i for i, group in enumerate(groups)
             for name in group}
    edges: Dict[Tuple[int, int], List[int]] = {}
    for src, dst, width in links:
        if src not in owner or dst not in owner:
            raise PlacementError(
                f"link ({src!r} -> {dst!r}) names an unknown "
                "partition")
        ga, gb = owner[src], owner[dst]
        if ga == gb:
            continue
        key = (ga, gb) if ga < gb else (gb, ga)
        edges.setdefault(key, []).append(int(width))

    adjacency: Dict[int, Dict[int, List[int]]] = {
        i: {} for i in range(len(groups))}
    for (ga, gb), widths in edges.items():
        adjacency[ga][gb] = widths
        adjacency[gb][ga] = widths

    def pair_cost(host_a: str, host_b: str,
                  widths: List[int]) -> float:
        if host_a == host_b:
            return 0.0
        model = spec.link_model(host_a, host_b)
        return sum(model.wire_ns(w) for w in widths)

    host_names = [h.name for h in hosts]
    free = {h.name: h.cores for h in hosts}
    at: Dict[int, str] = {}

    def incremental(gi: int, host: str) -> float:
        return sum(pair_cost(host, at[gj], widths)
                   for gj, widths in adjacency[gi].items()
                   if gj in at)

    # greedy seed: heaviest groups first (size, then total adjacent
    # traffic), each to the cheapest feasible host; ties break on host
    # order, so the pass is deterministic
    weight = {i: sum(len(w) for w in adjacency[i].values())
              for i in range(len(groups))}
    seed_order = sorted(
        range(len(groups)),
        key=lambda i: (-len(groups[i]), -weight[i], i))
    for gi in seed_order:
        need = len(groups[gi])
        candidates = [h for h in host_names if free[h] >= need]
        if not candidates:
            raise PlacementError(
                f"no live host has {need} free core(s) for group "
                f"{groups[gi]}")
        best = min(candidates, key=lambda h: (incremental(gi, h),
                                              host_names.index(h)))
        at[gi] = best
        free[best] -= need

    # bounded steepest descent: move any one group to any other
    # feasible host while that lowers the cut
    for _ in range(2 * len(groups) + 4):
        best_gain, best_move = 0.0, None
        for gi in range(len(groups)):
            here = at[gi]
            current = incremental_without(gi, at, adjacency, pair_cost)
            for host in host_names:
                if host == here or free[host] < len(groups[gi]):
                    continue
                at[gi] = host
                candidate = incremental_without(
                    gi, at, adjacency, pair_cost)
                at[gi] = here
                gain = current - candidate
                if gain > best_gain + 1e-12:
                    best_gain, best_move = gain, (gi, host)
        if best_move is None:
            break
        gi, host = best_move
        free[at[gi]] += len(groups[gi])
        free[host] -= len(groups[gi])
        at[gi] = host

    assignment = {name: at[owner[name]] for name in names}
    cut, crossing = 0.0, 0
    for (ga, gb), widths in edges.items():
        if at[ga] != at[gb]:
            cut += pair_cost(at[ga], at[gb], widths)
            crossing += len(widths)
    return Placement(assignment=assignment, cut_cost_ns=cut,
                     cross_links=crossing,
                     groups=[g for g in groups if len(g) > 1])


def incremental_without(gi, at, adjacency, pair_cost) -> float:
    """Cut contribution of group ``gi`` under assignment ``at``."""
    here = at[gi]
    return sum(pair_cost(here, at[gj], widths)
               for gj, widths in adjacency[gi].items())


def sim_links(sim) -> List[LinkDesc]:
    """The cross-partition link list of a built simulation, widths
    taken from each destination channel's token codec."""
    out: List[LinkDesc] = []
    for link in sim.links:
        a, b = link.src[0], link.dst[0]
        if a != b:
            width = sim._in_channel_by_key[link.dst].codec.nbytes * 8
            out.append((a, b, width))
    return out


def place_sim(sim, spec: FarmSpec,
              colocate: Iterable[Iterable[str]] = ()) -> Placement:
    """Place a built partitioned simulation onto the farm."""
    return place(list(sim.partitions), sim_links(sim), spec,
                 colocate=colocate)
