"""Simulated run farm: multi-host placement, deploy, supervision.

FireAxe's evaluation runs partitioned designs across *clusters* of
FPGA hosts (on-prem U250 boxes cabled with QSFP, cloud F1 instances);
FireSim's manager owns the corresponding deploy/supervise machinery.
This package reproduces that layer in software, with no real cluster
needed: hosts are declared in a JSON manifest (``hosts``), FireSim-
style topology passes place partitions to minimize the modelled
cross-host cut (``placement``), each placed host becomes a *virtual
host* — an OS process that forks the partition workers placed on it
(``deploy``) — and a manager supervises the agents, turns a host loss
into the supervisor's ordinary rollback + re-place path, and collects
fragments, telemetry and per-host FMR back into the run registry
(``manager``).

Cross-host partition traffic travels over the socket transport tier
(:mod:`repro.parallel.socket_transport`); intra-host traffic over
pipes.  Results stay bit-identical to every other backend.
"""

from .hosts import (DEFAULT_LINK_CLASS, LINK_CLASSES, FarmSpec,
                    HostSpec)
from .placement import Placement, place, place_sim, sim_links
from .manager import FarmBackend, FarmManager, FarmReport

__all__ = [
    "DEFAULT_LINK_CLASS",
    "LINK_CLASSES",
    "FarmSpec",
    "HostSpec",
    "Placement",
    "place",
    "place_sim",
    "sim_links",
    "FarmBackend",
    "FarmManager",
    "FarmReport",
]
