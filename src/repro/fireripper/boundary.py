"""Boundary analysis: port roles, chain-length check, channel plan.

Exact-mode (Sec. III-A1) needs each partition's boundary ports separated
into *source* and *sink* roles by combinational dependency, and token
channels split so the seed token always exists by construction.  Nets are
grouped per (source partition, destination partition, source role,
destination role); the legal exact-mode combinations are:

* ``source -> sink``  — the paper's "source out" channel (register-driven
  output feeding the far side's combinational logic),
* ``sink -> source``  — the "sink out" channel (combinational output that
  lands in far-side sequential elements),
* ``source -> source`` — fully registered on both sides.

``sink -> sink`` means the combinational dependency chain crosses the
boundary more than twice; FireRipper terminates compilation and reports
the chain of combinational ports (:class:`~repro.errors.CombChainError`),
exactly as the paper describes.

Fast-mode (Sec. III-A2) aggregates everything into one channel per
direction per neighbor; the deadlock that aggregation would cause is
broken by seed tokens at simulation start.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..errors import CombChainError
from ..firrtl.circuit import Circuit
from ..firrtl.passes.comb import CombSummary, circuit_comb_deps
from ..libdn.token import ChannelSpec
from .extract import ExtractedDesign, RawNet
from .spec import EXACT, FAST

SOURCE = "source"
SINK = "sink"


@dataclass(frozen=True)
class BoundaryNet:
    """A boundary net annotated with LI-BDN roles on each side."""

    name: str
    width: int
    src: str
    dst: str
    src_role: str  # SINK if the driving output has comb input deps
    dst_role: str  # SINK if the consuming input feeds comb outputs


@dataclass
class PartitionChannels:
    """Channel plan for one partition."""

    in_specs: List[ChannelSpec] = field(default_factory=list)
    out_specs: List[ChannelSpec] = field(default_factory=list)
    #: channel names fed/drained by external drivers, not links
    external_in: List[str] = field(default_factory=list)
    external_out: List[str] = field(default_factory=list)


@dataclass(frozen=True)
class LinkPlan:
    """A planned unidirectional link between two partition channels."""

    src: Tuple[str, str]
    dst: Tuple[str, str]
    width: int


@dataclass
class BoundaryPlan:
    """Full channel/link plan for a partitioned design."""

    mode: str
    nets: List[BoundaryNet]
    channels: Dict[str, PartitionChannels]
    links: List[LinkPlan]
    summaries: Dict[str, CombSummary]

    def interface_width(self, a: str, b: str) -> int:
        """Total bits crossing between partitions ``a`` and ``b`` (both
        directions) — the metric swept in Fig. 11/12."""
        return sum(n.width for n in self.nets
                   if {n.src, n.dst} == {a, b})

    def total_boundary_width(self) -> int:
        return sum(n.width for n in self.nets)


def plan_boundaries(design: ExtractedDesign, mode: str) -> BoundaryPlan:
    """Classify boundary ports and produce the channel/link plan."""
    summaries: Dict[str, CombSummary] = {}
    for pname, circuit in design.partitions.items():
        summaries[pname] = circuit_comb_deps(circuit)[circuit.top]

    # per-partition port-role lookup.  Roles are judged against *boundary*
    # outputs only: an input that combinationally feeds nothing but
    # external (bridge) I/O never extends an inter-FPGA combinational
    # chain, so it stays a source for the chain-length rule.
    net_outs: Dict[str, Set[str]] = {p: set() for p in design.partitions}
    for raw in design.nets:
        net_outs[raw.src].add(raw.name)
    sink_outs: Dict[str, Set[str]] = {}
    sink_ins: Dict[str, Set[str]] = {}
    for pname, circuit in design.partitions.items():
        summary = summaries[pname]
        sink_outs[pname] = {o for o, ins in summary.items() if ins}
        feeds: Set[str] = set()
        for out_name in net_outs[pname]:
            feeds |= set(summary.get(out_name, frozenset()))
        sink_ins[pname] = feeds

    nets: List[BoundaryNet] = []
    for raw in design.nets:
        src_role = SINK if raw.name in sink_outs[raw.src] else SOURCE
        dst_role = SINK if raw.name in sink_ins[raw.dst] else SOURCE
        nets.append(BoundaryNet(raw.name, raw.width, raw.src, raw.dst,
                                src_role, dst_role))

    if mode == EXACT:
        _check_chain_length(design, nets, summaries)

    channels: Dict[str, PartitionChannels] = {
        p: PartitionChannels() for p in design.partitions
    }
    links: List[LinkPlan] = []

    # group nets into channels
    def group_key(net: BoundaryNet) -> Tuple:
        if mode == FAST:
            return (net.src, net.dst)
        return (net.src, net.dst, net.src_role, net.dst_role)

    grouped: Dict[Tuple, List[BoundaryNet]] = {}
    for net in nets:
        grouped.setdefault(group_key(net), []).append(net)

    # input-port -> in-channel-name per partition (for dep computation)
    in_channel_of_port: Dict[str, Dict[str, str]] = {
        p: {} for p in design.partitions
    }
    pending_out: List[Tuple[str, str, List[BoundaryNet]]] = []

    for key in sorted(grouped):
        group = grouped[key]
        src, dst = key[0], key[1]
        suffix = "" if mode == FAST else f".{key[2]}_{key[3]}"
        out_name = f"to_{dst}{suffix}"
        in_name = f"from_{src}{suffix}"
        ports = tuple(sorted((n.name, n.width) for n in group))
        for pname, _ in ports:
            in_channel_of_port[dst][pname] = in_name
        channels[dst].in_specs.append(ChannelSpec(in_name, ports))
        pending_out.append((src, out_name, group))
        links.append(LinkPlan((src, out_name), (dst, in_name),
                              sum(w for _, w in ports)))

    # external I/O of the base partition (original design-level I/O)
    base = design.base_name
    base_top = design.partitions[base].top_module
    net_port_names = {n.name for n in nets}
    ext_in = [(p.name, p.width) for p in base_top.input_ports
              if p.name not in net_port_names]
    ext_out = [(p.name, p.width) for p in base_top.output_ports
               if p.name not in net_port_names]
    if ext_in:
        spec = ChannelSpec("io_in", tuple(sorted(ext_in)))
        channels[base].in_specs.append(spec)
        channels[base].external_in.append("io_in")
        for pname, _ in ext_in:
            in_channel_of_port[base][pname] = "io_in"
    if ext_out:
        pending_out.append((base, "io_out", None))
        channels[base].external_out.append("io_out")

    # out channels with comb deps resolved against the in-channel map
    for src, out_name, group in pending_out:
        if group is None:  # external io_out
            ports = tuple(sorted(ext_out))
        else:
            ports = tuple(sorted((n.name, n.width) for n in group))
        summary = summaries[src]
        deps: Set[str] = set()
        for pname, _ in ports:
            for in_port in summary.get(pname, frozenset()):
                chan = in_channel_of_port[src].get(in_port)
                if chan is not None:
                    deps.add(chan)
        channels[src].out_specs.append(
            ChannelSpec(out_name, ports, frozenset(deps)))

    return BoundaryPlan(mode=mode, nets=nets, channels=channels,
                        links=links, summaries=summaries)


def _check_chain_length(design: ExtractedDesign,
                        nets: Sequence[BoundaryNet],
                        summaries: Dict[str, CombSummary]) -> None:
    """Reject sink->sink nets with the offending combinational chain."""
    for net in nets:
        if net.src_role != SINK or net.dst_role != SINK:
            continue
        # reconstruct a concrete chain for the diagnostic:
        #   dst output <- dst input (net) <- src output (net) <- src input
        dst_summary = summaries[net.dst]
        dst_out = next((o for o, ins in sorted(dst_summary.items())
                        if net.name in ins), "?")
        src_inputs = summaries[net.src].get(net.name, frozenset())
        src_in = sorted(src_inputs)[0] if src_inputs else "?"
        chain = [
            f"{net.dst}.{dst_out}",
            f"{net.dst}.{net.name}",
            f"{net.src}.{net.name}",
            f"{net.src}.{src_in}",
        ]
        raise CombChainError(chain)
