"""User-facing partition report.

FireRipper's value proposition includes "quick feedback about the
partition interface and expected simulation performance" — this module
renders that feedback: per-pair interface widths, port-role breakdowns,
per-partition resource estimates with fit checks against an FPGA profile,
and the analytic rate prediction for a chosen transport and bitstream
frequency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ResourceError
from ..harness.analytic import analytic_rate_hz
from ..platform.estimate import estimate_circuit_resources
from ..platform.resources import FPGAProfile, FPGAResources
from ..platform.transport import TransportModel
from .boundary import BoundaryPlan, SINK
from .extract import ExtractedDesign


@dataclass
class PartitionReport:
    """Compile-time feedback for a partitioned design."""

    mode: str
    partition_names: List[str]
    interface_widths: Dict[Tuple[str, str], int]
    role_counts: Dict[str, Dict[str, int]]
    resources: Dict[str, FPGAResources]
    utilization: Dict[str, Dict[str, float]] = field(default_factory=dict)
    fit_failures: Dict[str, str] = field(default_factory=dict)
    expected_rate_hz: Optional[float] = None
    transport_name: Optional[str] = None
    host_freq_mhz: Optional[float] = None

    @property
    def max_interface_width(self) -> int:
        return max(self.interface_widths.values(), default=0)

    def to_text(self) -> str:
        lines = [f"FireRipper partition report (mode={self.mode})"]
        lines.append(f"  partitions: {', '.join(self.partition_names)}")
        for pair, width in sorted(self.interface_widths.items()):
            lines.append(f"  interface {pair[0]} <-> {pair[1]}: "
                         f"{width} bits")
        for pname in self.partition_names:
            roles = self.role_counts.get(pname, {})
            res = self.resources.get(pname)
            util = self.utilization.get(pname)
            lines.append(
                f"  {pname}: sink_out={roles.get('sink_out', 0)} "
                f"source_out={roles.get('source_out', 0)} "
                f"sink_in={roles.get('sink_in', 0)} "
                f"source_in={roles.get('source_in', 0)}")
            if res is not None:
                lines.append(f"    est. LUTs={res.luts:.0f} "
                             f"FFs={res.ffs:.0f} BRAM36={res.bram36:.0f}")
            if util is not None:
                lines.append(
                    "    utilization "
                    + " ".join(f"{k}={v:.1%}" for k, v in util.items()))
            if pname in self.fit_failures:
                lines.append(f"    DOES NOT FIT: {self.fit_failures[pname]}")
        if self.expected_rate_hz is not None:
            lines.append(
                f"  expected rate: {self.expected_rate_hz / 1e6:.3f} MHz "
                f"({self.transport_name} @ {self.host_freq_mhz} MHz)")
        return "\n".join(lines)


def build_report(design: ExtractedDesign, plan: BoundaryPlan,
                 profile: Optional[FPGAProfile] = None,
                 transport: Optional[TransportModel] = None,
                 host_freq_mhz: Optional[float] = None) -> PartitionReport:
    """Assemble the report from an extracted design and its channel plan."""
    names = sorted(design.partitions)
    widths: Dict[Tuple[str, str], int] = {}
    for net in plan.nets:
        pair = tuple(sorted((net.src, net.dst)))
        widths[pair] = widths.get(pair, 0) + net.width

    role_counts: Dict[str, Dict[str, int]] = {
        name: {"sink_out": 0, "source_out": 0,
               "sink_in": 0, "source_in": 0}
        for name in names
    }
    for net in plan.nets:
        out_role = "sink_out" if net.src_role == SINK else "source_out"
        in_role = "sink_in" if net.dst_role == SINK else "source_in"
        role_counts[net.src][out_role] += 1
        role_counts[net.dst][in_role] += 1

    resources = {name: estimate_circuit_resources(c)
                 for name, c in design.partitions.items()}
    utilization: Dict[str, Dict[str, float]] = {}
    fit_failures: Dict[str, str] = {}
    if profile is not None:
        for name, res in resources.items():
            try:
                utilization[name] = profile.check_fit(res, label=name)
            except ResourceError as exc:
                utilization[name] = exc.utilization
                fit_failures[name] = str(exc)

    expected = None
    if transport is not None:
        freq = host_freq_mhz or (profile.default_host_freq_mhz
                                 if profile else 30.0)
        max_dir_width = max(
            (sum(w for _, w in spec.ports)
             for chans in plan.channels.values()
             for spec in chans.out_specs),
            default=1)
        expected = analytic_rate_hz(plan.mode, max_dir_width, transport,
                                    freq,
                                    num_fpgas=len(design.partitions))
    return PartitionReport(
        mode=plan.mode,
        partition_names=names,
        interface_widths=widths,
        role_counts=role_counts,
        resources=resources,
        utilization=utilization,
        fit_failures=fit_failures,
        expected_rate_hz=expected,
        transport_name=transport.name if transport else None,
        host_freq_mhz=host_freq_mhz,
    )
