"""Fast-mode target modifications (Sec. III-A2, Fig. 3c).

Fast-mode seeds one token per boundary channel, which injects one cycle of
latency between the partitions.  That breaks ready-valid backpressure
(Fig. 3b's step 6: the sink observes two valid beats for one source beat),
so FireRipper rewrites the target at the boundary:

* **sink side** — a skid buffer is inserted between the boundary
  valid/bits/ready ports and the original consumer, sized so tokens in
  flight during the stale-ready window are never dropped (depth 4, ready
  advertised while at most one entry is occupied);
* **source side** — the outgoing valid is gated to ``valid & ready`` so a
  transaction is emitted exactly once, on the cycle the source believes
  the handshake fires.

These are *systematic* transforms: the modified RTL is still wrapped in an
LI-BDN, so results remain cycle-exact with respect to the modified target
(the paper's "cycle-approximate" fidelity contract).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import CompileError
from ..firrtl.ast import (
    Connect,
    InstPort,
    InstTarget,
    LocalTarget,
    Ref,
)
from ..firrtl.builder import ModuleBuilder, mux
from ..firrtl.circuit import Circuit, Module
from .extract import ExtractedDesign, RawNet, _rewrite_module_exprs


@dataclass(frozen=True)
class RVBoundaryBundle:
    """A ready-valid bundle crossing the partition boundary.

    ``src`` drives valid/bits; ``dst`` drives ready.
    """

    prefix: str
    src: str
    dst: str
    valid_net: str
    ready_net: str
    bits_net: str
    width: int


def detect_rv_bundles(nets: Sequence[RawNet]) -> List[RVBoundaryBundle]:
    """Find ready-valid bundles among boundary nets by the
    ``<prefix>_valid`` / ``<prefix>_ready`` / ``<prefix>_bits`` naming
    convention (the builder's ``rv_input``/``rv_output`` sugar)."""
    by_name = {n.name: n for n in nets}
    bundles: List[RVBoundaryBundle] = []
    for net in nets:
        if not net.name.endswith("_valid"):
            continue
        prefix = net.name[: -len("_valid")]
        ready = by_name.get(prefix + "_ready")
        bits = by_name.get(prefix + "_bits")
        if ready is None or bits is None:
            continue
        # valid/bits flow together; ready flows the opposite way
        if bits.src != net.src or bits.dst != net.dst:
            continue
        if ready.src != net.dst or ready.dst != net.src:
            continue
        bundles.append(RVBoundaryBundle(
            prefix=prefix, src=net.src, dst=net.dst,
            valid_net=net.name, ready_net=ready.name,
            bits_net=bits.name, width=bits.width))
    return bundles


def make_skid_buffer(width: int, depth: int = 4,
                     ready_threshold: int = 1) -> Module:
    """Skid buffer that always absorbs arrivals while advertising a
    conservative ready.

    ``enq_ready`` (sent back across the boundary, and therefore observed
    one cycle stale) is asserted only while at most ``ready_threshold``
    entries are occupied; with the source's ``valid & ready`` gating, at
    most two transactions can be in flight during the stale window, so
    ``depth >= ready_threshold + 3`` never drops a beat.
    """
    if depth < ready_threshold + 3:
        raise CompileError(
            f"skid buffer depth {depth} too small for ready threshold "
            f"{ready_threshold} with one cycle of injected latency")
    b = ModuleBuilder(f"FireAxeSkidBuffer_w{width}_d{depth}")
    enq_valid = b.input("enq_valid", 1)
    enq_bits = b.input("enq_bits", width)
    enq_ready = b.output("enq_ready", 1)
    deq_valid = b.output("deq_valid", 1)
    deq_bits = b.output("deq_bits", width)
    deq_ready = b.input("deq_ready", 1)

    ptr_w = max((depth - 1).bit_length(), 1)
    cnt_w = depth.bit_length()
    count = b.reg("count", cnt_w)
    rptr = b.reg("rptr", ptr_w)
    wptr = b.reg("wptr", ptr_w)
    storage = b.mem("storage", depth, width)

    not_full = b.node("not_full", count.lt(depth))
    enq_fire = b.node("enq_fire", enq_valid & not_full)
    has_data = b.node("has_data", count.gt(0))
    deq_fire = b.node("deq_fire", has_data & deq_ready)

    b.mem_write(storage, wptr, enq_bits, enq_fire)
    head = b.mem_read(storage, "head", rptr)

    b.connect(deq_valid, has_data)
    b.connect(deq_bits, head)
    b.connect(enq_ready, count.leq(ready_threshold))

    wrap = depth - 1
    b.connect(wptr, mux(enq_fire, mux(wptr.eq(wrap), b.lit(0, ptr_w),
                                      wptr + 1), wptr))
    b.connect(rptr, mux(deq_fire, mux(rptr.eq(wrap), b.lit(0, ptr_w),
                                      rptr + 1), rptr))
    b.connect(count, (count + enq_fire) - deq_fire)
    return b.build()


def apply_fast_mode_transforms(
        design: ExtractedDesign,
        bundles: Optional[Sequence[RVBoundaryBundle]] = None
        ) -> List[RVBoundaryBundle]:
    """Rewrite the partition circuits in place for fast-mode operation.

    Returns the bundles that were transformed (auto-detected when not
    given).
    """
    if bundles is None:
        bundles = detect_rv_bundles(design.nets)
    for bundle in bundles:
        _gate_source_valid(design.partitions[bundle.src], bundle)
        _insert_sink_skid(design.partitions[bundle.dst], bundle)
    return list(bundles)


def _gate_source_valid(circuit: Circuit, bundle: RVBoundaryBundle) -> None:
    """source side: ``valid <= valid_expr & ready_in``."""
    top = circuit.top_module
    for i, s in enumerate(top.stmts):
        if isinstance(s, Connect) and isinstance(s.target, LocalTarget) \
                and s.target.name == bundle.valid_net:
            gated = (_as_signal(s.expr) & Ref(bundle.ready_net, 1)).expr
            top.stmts[i] = Connect(s.target, gated)
            return
    raise CompileError(
        f"{circuit.top}: no driver found for boundary valid "
        f"{bundle.valid_net!r}")


def _insert_sink_skid(circuit: Circuit, bundle: RVBoundaryBundle) -> None:
    """sink side: insert a skid buffer behind the boundary ports."""
    top = circuit.top_module
    skid = make_skid_buffer(bundle.width)
    if skid.name not in circuit.modules:
        circuit.add_module(skid)
    inst = top.fresh_name(f"skid_{bundle.prefix}")

    # consumers of the boundary valid/bits now read the skid's deq side
    def redirect(leaf):
        if isinstance(leaf, Ref) and leaf.name == bundle.valid_net:
            return InstPort(inst, "deq_valid", 1)
        if isinstance(leaf, Ref) and leaf.name == bundle.bits_net:
            return InstPort(inst, "deq_bits", bundle.width)
        return leaf

    _rewrite_module_exprs(top, redirect)

    # the original ready driver now backs the skid's deq_ready; the
    # boundary ready port advertises the skid's conservative enq_ready
    ready_driver = None
    for i, s in enumerate(top.stmts):
        if isinstance(s, Connect) and isinstance(s.target, LocalTarget) \
                and s.target.name == bundle.ready_net:
            ready_driver = s
            top.stmts[i] = Connect(InstTarget(inst, "deq_ready"), s.expr)
            break
    if ready_driver is None:
        raise CompileError(
            f"{circuit.top}: no driver found for boundary ready "
            f"{bundle.ready_net!r}")

    from ..firrtl.ast import DefInstance

    top.stmts.append(DefInstance(inst, skid.name))
    top.stmts.append(Connect(InstTarget(inst, "enq_valid"),
                             Ref(bundle.valid_net, 1)))
    top.stmts.append(Connect(InstTarget(inst, "enq_bits"),
                             Ref(bundle.bits_net, bundle.width)))
    top.stmts.append(Connect(LocalTarget(bundle.ready_net),
                             InstPort(inst, "enq_ready", 1)))


def _as_signal(expr):
    from ..firrtl.builder import Signal

    return Signal(expr)
