"""FireRipper: FireAxe's partitioning compiler (Sec. III of the paper).

Given a partition specification — a mode (*exact* or *fast*), and either
explicit module-instance groups or NoC router-index groups — FireRipper
rewrites a monolithic circuit into per-FPGA partition circuits, classifies
every boundary port by combinational dependency, enforces the exact-mode
chain-length rule, applies the fast-mode target modifications (skid
buffers, ``valid & ready`` gating), and emits the LI-BDN channel plan plus
a user-facing report of interface widths and expected performance.
"""

from .spec import (
    FAST,
    EXACT,
    NoCPartitionSpec,
    PartitionGroup,
    PartitionSpec,
)
from .extract import extract_partitions, remove_modules, ExtractedDesign
from .boundary import BoundaryNet, BoundaryPlan, plan_boundaries
from .autopartition import AutoPartitionResult, auto_partition, build_instance_graph
from .compiler import FireRipper, PartitionedDesign
from .report import PartitionReport

__all__ = [
    "EXACT",
    "FAST",
    "PartitionSpec",
    "PartitionGroup",
    "NoCPartitionSpec",
    "extract_partitions",
    "remove_modules",
    "ExtractedDesign",
    "BoundaryNet",
    "BoundaryPlan",
    "plan_boundaries",
    "FireRipper",
    "PartitionedDesign",
    "auto_partition",
    "AutoPartitionResult",
    "build_instance_graph",
    "PartitionReport",
]
