"""Automatic partition-point search (the paper's Sec. VIII-B future work).

FireRipper's default flow needs the user to name the modules per FPGA.
The paper suggests two augmentations: rough per-FPGA resource estimates
for quick feedback (implemented in :mod:`repro.platform.estimate` and the
report), and "using existing graph partitioning tools to automatically
search for boundaries that are amenable to partitioning".  This module
implements that search:

1. build a weighted graph over the top module's instances — node weight
   is the instance's estimated LUT footprint, edge weight the bit width
   of the wiring between two instances (the would-be boundary cost),
2. greedily grow balanced groups from heavy seed nodes, preferring to
   absorb neighbours with the largest attached cut width (a
   Kernighan-Lin-flavoured refinement pass then swaps instances while it
   reduces the cut without violating the capacity bound),
3. reject boundaries exact-mode could not compile (sink->sink nets) when
   ``mode="exact"`` by keeping combinationally-coupled neighbours
   together.

The result is a ready-to-compile :class:`~repro.fireripper.PartitionSpec`
plus a search report (cut width, per-FPGA utilization).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..errors import SelectionError
from ..firrtl.ast import Connect, InstPort, InstTarget, LocalTarget, Ref
from ..firrtl.circuit import Circuit, Module
from ..firrtl.passes.comb import circuit_comb_deps
from ..platform.estimate import estimate_circuit_resources
from ..platform.resources import FPGAProfile
from .spec import EXACT, PartitionGroup, PartitionSpec


@dataclass
class InstanceGraph:
    """Weighted instance graph of a circuit's top module."""

    nodes: List[str]
    luts: Dict[str, float]
    edges: Dict[Tuple[str, str], float]  # undirected, key sorted
    comb_coupled: Set[Tuple[str, str]]   # pairs with comb through-paths

    def edge(self, a: str, b: str) -> float:
        return self.edges.get((min(a, b), max(a, b)), 0.0)

    def neighbors(self, n: str) -> List[str]:
        out = []
        for (a, b) in self.edges:
            if a == n:
                out.append(b)
            elif b == n:
                out.append(a)
        return out

    def cut_width(self, assignment: Dict[str, int]) -> float:
        """Total bit width crossing group boundaries."""
        return sum(w for (a, b), w in self.edges.items()
                   if assignment.get(a) != assignment.get(b))


def build_instance_graph(circuit: Circuit,
                         mode: str = EXACT) -> InstanceGraph:
    """Extract the weighted instance graph from the top module."""
    top = circuit.top_module
    nodes = [i.name for i in top.instances()]
    inst_mod = {i.name: i.module for i in top.instances()}

    luts: Dict[str, float] = {}
    for name in nodes:
        sub = circuit.clone()
        sub.top = inst_mod[name]
        sub.remove_unreachable()
        luts[name] = estimate_circuit_resources(sub).luts

    # edge weights: width of direct instance-to-instance wiring
    edges: Dict[Tuple[str, str], float] = {}

    def add_edge(a: str, b: str, width: float) -> None:
        if a == b:
            return
        key = (min(a, b), max(a, b))
        edges[key] = edges.get(key, 0.0) + width

    # trace connects: inst input driven by expr referencing other insts
    for stmt in top.stmts:
        if isinstance(stmt, Connect) and isinstance(stmt.target,
                                                    InstTarget):
            for leaf in stmt.expr.refs():
                if isinstance(leaf, InstPort):
                    add_edge(stmt.target.inst, leaf.inst, leaf.width)

    # combinationally-coupled pairs: producer output with comb deps
    # feeding a consumer input that feeds comb outputs (would be a
    # sink->sink boundary if separated)
    summaries = circuit_comb_deps(circuit)
    comb_coupled: Set[Tuple[str, str]] = set()
    if mode == EXACT:
        for stmt in top.stmts:
            if not (isinstance(stmt, Connect)
                    and isinstance(stmt.target, InstTarget)):
                continue
            dst_mod = summaries[inst_mod[stmt.target.inst]]
            dst_sinky = any(stmt.target.port in ins
                            for ins in dst_mod.values())
            if not dst_sinky:
                continue
            for leaf in stmt.expr.refs():
                if isinstance(leaf, InstPort):
                    src_summary = summaries[inst_mod[leaf.inst]]
                    if src_summary.get(leaf.port):
                        pair = (min(stmt.target.inst, leaf.inst),
                                max(stmt.target.inst, leaf.inst))
                        comb_coupled.add(pair)
    return InstanceGraph(nodes, luts, edges, comb_coupled)


@dataclass
class AutoPartitionResult:
    """Outcome of the search."""

    spec: PartitionSpec
    assignment: Dict[str, int]  # instance -> group index (-1 = base)
    cut_bits: float
    group_luts: Dict[int, float]
    refinement_moves: int

    def to_text(self) -> str:
        lines = ["automatic partition search"]
        groups: Dict[int, List[str]] = {}
        for inst, g in sorted(self.assignment.items()):
            groups.setdefault(g, []).append(inst)
        for g in sorted(groups):
            label = "base" if g == -1 else f"fpga{g}"
            lines.append(f"  {label}: {', '.join(groups[g])} "
                         f"({self.group_luts.get(g, 0.0):.0f} LUTs)")
        lines.append(f"  boundary cut: {self.cut_bits:.0f} bits "
                     f"({self.refinement_moves} refinement moves)")
        return "\n".join(lines)


def auto_partition(circuit: Circuit, n_fpgas: int,
                   profile: Optional[FPGAProfile] = None,
                   mode: str = EXACT,
                   balance_slack: float = 0.25,
                   keep_in_base: Sequence[str] = ()) -> AutoPartitionResult:
    """Search for a balanced, narrow-boundary partition of the top-level
    instances onto ``n_fpgas`` FPGAs.

    Args:
        circuit: the monolithic design.
        n_fpgas: total FPGA count (one group is the base partition).
        profile: optional capacity bound per FPGA.
        mode: exact-mode keeps combinationally-coupled instances in the
            same group so the chain-length check cannot fail.
        balance_slack: allowed deviation from perfectly balanced LUTs.
        keep_in_base: instance names pinned to the base partition.
    """
    if n_fpgas < 2:
        raise SelectionError("auto_partition needs at least 2 FPGAs")
    graph = build_instance_graph(circuit, mode=mode)
    if len(graph.nodes) < n_fpgas:
        raise SelectionError(
            f"only {len(graph.nodes)} top-level instances for "
            f"{n_fpgas} FPGAs")

    # union combinationally-coupled instances into super-nodes
    parent: Dict[str, str] = {n: n for n in graph.nodes}

    def find(x: str) -> str:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for a, b in graph.comb_coupled:
        parent[find(a)] = find(b)
    clusters: Dict[str, List[str]] = {}
    for n in graph.nodes:
        clusters.setdefault(find(n), []).append(n)
    cluster_ids = sorted(clusters)
    cluster_luts = {c: sum(graph.luts[n] for n in clusters[c])
                    for c in cluster_ids}

    total_luts = sum(cluster_luts.values()) or 1.0
    target = total_luts / n_fpgas
    capacity = target * (1.0 + balance_slack)
    if profile is not None:
        capacity = min(capacity, profile.usable.luts
                       * profile.congestion_threshold)

    pinned = {find(n) for n in keep_in_base if n in parent}

    # greedy seeding: heaviest unpinned clusters seed groups 0..n-2;
    # everything else starts in the base (-1)
    assignment: Dict[str, int] = {c: -1 for c in cluster_ids}
    free = sorted((c for c in cluster_ids if c not in pinned),
                  key=lambda c: -cluster_luts[c])
    n_groups = n_fpgas - 1
    loads = {g: 0.0 for g in range(n_groups)}
    loads[-1] = sum(cluster_luts[c] for c in pinned)
    for i, c in enumerate(free):
        if i < n_groups:
            g = i
        else:
            g = min(loads, key=lambda k: loads[k])
        assignment[c] = g
        loads[g] = loads.get(g, 0.0) + cluster_luts[c]

    def inst_assignment() -> Dict[str, int]:
        return {n: assignment[find(n)] for n in graph.nodes}

    # KL-style refinement: move a cluster to the neighbouring group that
    # most reduces the cut, while staying under capacity
    moves = 0
    for _ in range(4 * len(cluster_ids)):
        best = None
        current_cut = graph.cut_width(inst_assignment())
        group_sizes: Dict[int, int] = {}
        for c2 in cluster_ids:
            group_sizes[assignment[c2]] = \
                group_sizes.get(assignment[c2], 0) + 1
        for c in cluster_ids:
            if c in pinned:
                continue
            here = assignment[c]
            if here != -1 and group_sizes.get(here, 0) <= 1:
                continue  # never empty an extracted group
            for g in list(loads):
                if g == here:
                    continue
                if loads[g] + cluster_luts[c] > capacity:
                    continue
                assignment[c] = g
                cut = graph.cut_width(inst_assignment())
                assignment[c] = here
                if cut < current_cut and (best is None or cut < best[0]):
                    best = (cut, c, g)
        if best is None:
            break
        _, c, g = best
        loads[assignment[c]] -= cluster_luts[c]
        assignment[c] = g
        loads[g] = loads.get(g, 0.0) + cluster_luts[c]
        moves += 1

    final = inst_assignment()
    groups: Dict[int, List[str]] = {}
    for inst, g in final.items():
        if g != -1:
            groups.setdefault(g, []).append(inst)
    if not groups:
        raise SelectionError("search assigned everything to the base; "
                             "loosen balance_slack or reduce n_fpgas")
    spec = PartitionSpec(mode=mode, groups=[
        PartitionGroup.make(f"auto{g}", sorted(members))
        for g, members in sorted(groups.items())])
    return AutoPartitionResult(
        spec=spec,
        assignment=final,
        cut_bits=graph.cut_width(final),
        group_luts={g: loads.get(g, 0.0) for g in loads},
        refinement_moves=moves,
    )
