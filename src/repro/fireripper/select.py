"""Module selection: explicit instance lists and NoC-partition-mode.

The default selection mode is a per-FPGA list of instance paths.  The
NoC-partition-mode (Sec. III-B, Fig. 4) instead takes router-node indices:
FireRipper finds the named router instances, then grows each group with
the modules that are wired (transitively) to the group's routers but touch
no router outside the group — picking up protocol converters and the tiles
behind them automatically, which is how the 24-core SoC is split across
five FPGAs with nothing but ``[[0..5], [6..11], ...]``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import SelectionError
from ..firrtl.circuit import Circuit, Module
from ..firrtl.passes.connectivity import connected_closure
from .spec import NoCPartitionSpec, PartitionGroup


def select_explicit(circuit: Circuit,
                    groups: Sequence[PartitionGroup]
                    ) -> Dict[str, List[str]]:
    """Validate and normalize explicit group selections."""
    out: Dict[str, List[str]] = {}
    for g in groups:
        out[g.name] = list(g.instance_paths)
    return out


def _find_noc_parent(circuit: Circuit, prefix: str
                     ) -> Tuple[Module, str]:
    """Locate the module hosting the router instances and its hierarchical
    path prefix from the top (empty when the routers live in the top)."""
    pattern = re.compile(re.escape(prefix) + r"\d+$")

    def routers_in(module: Module) -> int:
        return sum(1 for i in module.instances()
                   if pattern.fullmatch(i.name))

    best: Optional[str] = None
    for name, module in circuit.modules.items():
        if routers_in(module) and (best is None
                                   or routers_in(module)
                                   > routers_in(circuit.module(best))):
            best = name
    if best is None:
        raise SelectionError(
            f"no instances matching {prefix!r}<index> found in any module")
    if best == circuit.top:
        return circuit.top_module, ""
    paths = circuit.instance_paths(best)
    if not paths:
        raise SelectionError(
            f"module {best!r} hosts the routers but is never instantiated")
    if len(paths) > 1:
        raise SelectionError(
            f"module {best!r} hosting the routers is instantiated "
            f"{len(paths)} times; NoC-partition-mode needs a unique parent")
    return circuit.module(best), paths[0] + "."


def select_noc(circuit: Circuit, spec: NoCPartitionSpec
               ) -> Dict[str, List[str]]:
    """NoC-partition-mode selection from router indices (Fig. 4).

    For every group: seed with the named routers, then repeatedly absorb
    instances wired to the group that are not wired to any router outside
    it.  Groups must come out disjoint.
    """
    parent, path_prefix = _find_noc_parent(circuit, spec.router_prefix)
    inst_names = {i.name for i in parent.instances()}
    pattern = re.compile(re.escape(spec.router_prefix) + r"(\d+)$")
    all_routers = {name for name in inst_names if pattern.fullmatch(name)}

    out: Dict[str, List[str]] = {}
    claimed: Dict[str, str] = {}
    for gi, indices in enumerate(spec.router_groups):
        gname = f"noc{gi}"
        seeds: Set[str] = set()
        for idx in indices:
            rname = f"{spec.router_prefix}{idx}"
            if rname not in inst_names:
                raise SelectionError(
                    f"router index {idx} ({rname!r}) not found in "
                    f"{parent.name}")
            seeds.add(rname)
        blockers = all_routers - seeds
        closure = connected_closure(parent, seeds, blockers)
        for inst in sorted(closure):
            if inst in claimed:
                raise SelectionError(
                    f"instance {inst!r} selected by both {claimed[inst]!r} "
                    f"and {gname!r}; split the router groups differently")
            claimed[inst] = gname
        out[gname] = [path_prefix + inst for inst in sorted(closure)]
    return out
