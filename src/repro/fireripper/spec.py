"""Partition specifications: what the user hands FireRipper.

Mirrors the user-facing knobs of Sec. III: the partitioning mode, the
number of FPGAs and which modules go on each, and (for NoC-based SoCs) the
router-index shorthand of NoC-partition-mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import SelectionError

#: cycle-exact partitioning; boundary combinational logic allowed up to a
#: dependency-chain length of two; two link crossings per target cycle.
EXACT = "exact"
#: cycle-approximate partitioning for latency-insensitive boundaries;
#: seed tokens + target modifications; one link crossing per target cycle.
FAST = "fast"

_MODES = (EXACT, FAST)


@dataclass(frozen=True)
class PartitionGroup:
    """One extracted partition: a name and the instance paths it pulls out
    of the module hierarchy (dot-separated, rooted at the top module)."""

    name: str
    instance_paths: Tuple[str, ...]

    @staticmethod
    def make(name: str, paths: Sequence[str]) -> "PartitionGroup":
        return PartitionGroup(name, tuple(paths))


@dataclass(frozen=True)
class NoCPartitionSpec:
    """NoC-partition-mode selection (Sec. III-B).

    Instead of explicit module lists, the user names the NoC router-node
    indices that should be grouped on each FPGA; FireRipper collects the
    protocol converters and tiles hanging off those routers automatically.

    Args:
        router_groups: one tuple of router indices per extracted partition.
        router_prefix: instance-name prefix of router nodes (``router3``).
    """

    router_groups: Tuple[Tuple[int, ...], ...]
    router_prefix: str = "router"

    @staticmethod
    def make(groups: Sequence[Sequence[int]],
             router_prefix: str = "router") -> "NoCPartitionSpec":
        return NoCPartitionSpec(tuple(tuple(g) for g in groups),
                                router_prefix)


@dataclass
class PartitionSpec:
    """Everything FireRipper needs to compile a partitioned simulation.

    Exactly one of ``groups`` / ``noc`` must be given.  The base partition
    (whatever is not extracted) is always produced and is named
    ``base_name``.
    """

    mode: str = EXACT
    groups: Optional[List[PartitionGroup]] = None
    noc: Optional[NoCPartitionSpec] = None
    base_name: str = "base"
    #: ready-valid bundle prefixes crossing the boundary (fast-mode target
    #: modifications); None means auto-detect via the _valid/_ready/_bits
    #: naming convention.
    rv_bundles: Optional[List[str]] = None

    def __post_init__(self):
        if self.mode not in _MODES:
            raise SelectionError(
                f"unknown partition mode {self.mode!r}; pick one of {_MODES}")
        if (self.groups is None) == (self.noc is None):
            raise SelectionError(
                "specify exactly one of groups= or noc= in PartitionSpec")
        if self.groups is not None:
            names = [g.name for g in self.groups]
            if len(set(names)) != len(names):
                raise SelectionError(f"duplicate group names in {names}")
            if self.base_name in names:
                raise SelectionError(
                    f"group name {self.base_name!r} collides with the base "
                    f"partition")

    @property
    def num_fpgas(self) -> int:
        """Total FPGA count: extracted groups plus the base partition."""
        n = len(self.groups) if self.groups is not None \
            else len(self.noc.router_groups)
        return n + 1
