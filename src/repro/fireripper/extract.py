"""Module extraction and removal (Sec. III-C, Fig. 5).

The pipeline matches the paper's passes:

1. **Uniquify** — modules along each selected instance path are cloned so
   the path is the only place they are instantiated (hoisting would
   otherwise change unrelated instances' interfaces).
2. **Reparent** — each selected instance is hoisted one hierarchy level at
   a time until it sits in the top module, punching I/O ports through the
   intervening modules while preserving connectivity.
3. **Grouping** — the selected instances of each partition group are moved
   into a fresh wrapper module.  Direct connections between two members of
   the same group stay inside the wrapper; everything else is punched as a
   *boundary net*.
4. **Extract / Remove** — each wrapper becomes the top of its own
   partition circuit; the base partition is the original top with the
   members deleted, dead glue logic cleaned up, and boundary nets exposed
   as top-level ports.

Every boundary net appears with the *same* port name on both sides, which
is what lets the LI-BDN channel plan pair them up later.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import IRError, SelectionError
from ..firrtl.ast import (
    Connect,
    DefInstance,
    DefMemory,
    DefNode,
    DefRegister,
    DefWire,
    Expr,
    INPUT,
    InstPort,
    InstTarget,
    Lit,
    LocalTarget,
    MemReadPort,
    MemWritePort,
    OUTPUT,
    Port,
    PrimOp,
    Ref,
)
from ..firrtl.circuit import Circuit, Module


@dataclass(frozen=True)
class RawNet:
    """One boundary net: same-named port on the driving and consuming
    partitions."""

    name: str
    width: int
    src: str  # partition name driving the net
    dst: str  # partition name consuming the net


@dataclass
class ExtractedDesign:
    """Result of the extraction transform."""

    partitions: Dict[str, Circuit]
    nets: List[RawNet]
    #: group name -> top-level instance names after reparenting
    group_members: Dict[str, List[str]]
    base_name: str


# --------------------------------------------------------------------------
# expression rewriting helpers
# --------------------------------------------------------------------------


def _rewrite_expr(expr: Expr, fn) -> Expr:
    """Rebuild ``expr`` with ``fn`` applied to each Ref/InstPort leaf."""
    if isinstance(expr, (Ref, InstPort)):
        return fn(expr)
    if isinstance(expr, PrimOp):
        return PrimOp(expr.op, tuple(_rewrite_expr(a, fn)
                                     for a in expr.args),
                      expr.width, expr.params)
    return expr


def _rewrite_module_exprs(module: Module, fn) -> None:
    for i, s in enumerate(module.stmts):
        if isinstance(s, DefNode):
            module.stmts[i] = DefNode(s.name, _rewrite_expr(s.expr, fn))
        elif isinstance(s, Connect):
            module.stmts[i] = Connect(s.target, _rewrite_expr(s.expr, fn))
        elif isinstance(s, MemReadPort):
            module.stmts[i] = MemReadPort(s.mem, s.name,
                                          _rewrite_expr(s.addr, fn))
        elif isinstance(s, MemWritePort):
            module.stmts[i] = MemWritePort(
                s.mem, _rewrite_expr(s.addr, fn),
                _rewrite_expr(s.data, fn), _rewrite_expr(s.en, fn))


def _module_exprs(module: Module):
    for s in module.stmts:
        if isinstance(s, DefNode):
            yield s.expr
        elif isinstance(s, Connect):
            yield s.expr
        elif isinstance(s, MemReadPort):
            yield s.addr
        elif isinstance(s, MemWritePort):
            yield s.addr
            yield s.data
            yield s.en


# --------------------------------------------------------------------------
# uniquify + reparent
# --------------------------------------------------------------------------


def _instantiation_count(circuit: Circuit, module_name: str) -> int:
    count = 1 if module_name == circuit.top else 0
    for m in circuit.modules.values():
        for inst in m.instances():
            if inst.module == module_name:
                count += 1
    return count


def _uniquify_path(circuit: Circuit, path: str) -> None:
    """Clone the modules along ``path`` (excluding the final instance's
    module) so each is instantiated exactly once."""
    mod = circuit.top_module
    for segment in path.split(".")[:-1]:
        inst = mod.instance(segment)
        child_name = inst.module
        if _instantiation_count(circuit, child_name) > 1:
            clone = copy.deepcopy(circuit.module(child_name))
            base = f"{child_name}_uniq"
            fresh = base
            i = 0
            while fresh in circuit.modules:
                i += 1
                fresh = f"{base}{i}"
            clone.name = fresh
            circuit.add_module(clone)
            inst.module = fresh
            child_name = fresh
        mod = circuit.module(child_name)


def _hoist_once(circuit: Circuit, path: str) -> str:
    """Move the instance named by ``path`` one level up the hierarchy.

    Returns the new (shorter) path.  The parent module must be uniquely
    instantiated (guaranteed by :func:`_uniquify_path`).
    """
    parts = path.split(".")
    assert len(parts) >= 2, "instance already at top"
    grandparent = circuit.top_module
    for segment in parts[:-2]:
        grandparent = circuit.module(
            grandparent.instance(segment).module)
    parent_inst_name = parts[-2]
    parent = circuit.module(grandparent.instance(parent_inst_name).module)
    inst_name = parts[-1]
    inst = parent.instance(inst_name)
    child = circuit.module(inst.module)

    conn = parent.connect_map()
    stmts_to_remove: List = [inst]
    port_map: List[Tuple[Port, str]] = []
    for q in child.ports:
        punched = parent.fresh_name(f"{inst_name}_{q.name}")
        if q.is_input:
            driver = conn.get(f"{inst_name}.{q.name}")
            parent.ports.append(Port(punched, OUTPUT, q.width))
            expr = driver.expr if driver is not None else Lit(0, q.width)
            parent.stmts.append(Connect(LocalTarget(punched), expr))
            if driver is not None:
                stmts_to_remove.append(driver)
        else:
            parent.ports.append(Port(punched, INPUT, q.width))
        port_map.append((q, punched))

    for s in stmts_to_remove:
        parent.stmts.remove(s)

    # reads of the hoisted instance's outputs become reads of the punched
    # input ports
    out_names = {q.name: punched for q, punched in port_map
                 if not q.is_input}

    def redirect(leaf):
        if isinstance(leaf, InstPort) and leaf.inst == inst_name \
                and leaf.port in out_names:
            return Ref(out_names[leaf.port], leaf.width)
        return leaf

    _rewrite_module_exprs(parent, redirect)

    new_name = grandparent.fresh_name(inst_name)
    grandparent.stmts.append(DefInstance(new_name, child.name))
    for q, punched in port_map:
        if q.is_input:
            grandparent.stmts.append(Connect(
                InstTarget(new_name, q.name),
                InstPort(parent_inst_name, punched, q.width)))
        else:
            grandparent.stmts.append(Connect(
                InstTarget(parent_inst_name, punched),
                InstPort(new_name, q.name, q.width)))
    return ".".join(parts[:-2] + [new_name])


def _reparent_to_top(circuit: Circuit, path: str) -> str:
    while "." in path:
        path = _hoist_once(circuit, path)
    return path


# --------------------------------------------------------------------------
# dead glue elimination in the base top after member removal
# --------------------------------------------------------------------------


def _eliminate_dead_glue(module: Module) -> None:
    """Drop wires/nodes (and their drivers) no longer reachable from the
    module's outputs, registers, memories, or remaining instances."""
    drivers: Dict[str, Expr] = {}
    read_ports: Dict[str, MemReadPort] = {}
    for s in module.stmts:
        if isinstance(s, DefNode):
            drivers[s.name] = s.expr
        elif isinstance(s, Connect) and isinstance(s.target, LocalTarget):
            drivers[s.target.name] = s.expr
        elif isinstance(s, MemReadPort):
            read_ports[s.name] = s

    output_names = {p.name for p in module.output_ports}
    reg_names = {r.name for r in module.registers()}

    used: Set[str] = set()

    def mark_expr(expr: Expr) -> None:
        for leaf in expr.refs():
            if isinstance(leaf, Ref):
                mark_name(leaf.name)

    def mark_name(name: str) -> None:
        if name in used:
            return
        used.add(name)
        if name in drivers:
            mark_expr(drivers[name])
        if name in read_ports:
            mark_expr(read_ports[name].addr)

    for s in module.stmts:
        if isinstance(s, Connect):
            if isinstance(s.target, InstTarget):
                mark_expr(s.expr)
            elif isinstance(s.target, LocalTarget) and (
                    s.target.name in output_names
                    or s.target.name in reg_names):
                mark_expr(s.expr)
        elif isinstance(s, MemWritePort):
            mark_expr(s.addr)
            mark_expr(s.data)
            mark_expr(s.en)

    def keep(s) -> bool:
        if isinstance(s, DefWire):
            return s.name in used
        if isinstance(s, DefNode):
            return s.name in used
        if isinstance(s, MemReadPort):
            return s.name in used
        if isinstance(s, Connect) and isinstance(s.target, LocalTarget):
            name = s.target.name
            if name in output_names or name in reg_names:
                return True
            return name in used
        return True

    module.stmts = [s for s in module.stmts if keep(s)]


# --------------------------------------------------------------------------
# grouping + extraction
# --------------------------------------------------------------------------


def _trace_direct(module: Module, expr: Expr) -> Optional[InstPort]:
    """Follow single-reference wire/node chains; return the InstPort this
    expression is (transitively) a plain copy of, if any."""
    drivers: Dict[str, Expr] = {}
    for s in module.stmts:
        if isinstance(s, DefNode):
            drivers[s.name] = s.expr
        elif isinstance(s, Connect) and isinstance(s.target, LocalTarget):
            drivers[s.target.name] = s.expr
    seen: Set[str] = set()
    while True:
        if isinstance(expr, InstPort):
            return expr
        if isinstance(expr, Ref):
            if expr.name in seen or expr.name not in drivers:
                return None
            seen.add(expr.name)
            expr = drivers[expr.name]
            continue
        return None


class _WrapperBuilder:
    """Accumulates one partition group's wrapper module."""

    def __init__(self, name: str):
        self.module = Module(f"Wrapper_{name}")
        self.partition = name
        self._out_ports: Dict[Tuple[str, str], str] = {}
        self._members: Dict[str, str] = {}  # inst name -> module name

    def add_member(self, inst_name: str, module_name: str) -> None:
        self._members[inst_name] = module_name
        self.module.stmts.append(DefInstance(inst_name, module_name))

    def add_input(self, net: str, width: int, inst: str, port: str) -> None:
        if not self.module.has_port(net):
            self.module.ports.append(Port(net, INPUT, width))
        self.module.stmts.append(
            Connect(InstTarget(inst, port), Ref(net, width)))

    def connect_internal(self, inst: str, port: str, width: int,
                         src_inst: str, src_port: str) -> None:
        self.module.stmts.append(
            Connect(InstTarget(inst, port),
                    InstPort(src_inst, src_port, width)))

    def expose_output(self, inst: str, port: str, width: int,
                      net: str) -> None:
        """Expose a member output as wrapper port ``net`` (idempotent per
        (inst, port, net))."""
        key = (f"{inst}.{port}", net)
        if key in self._out_ports:
            return
        self._out_ports[key] = net
        if not self.module.has_port(net):
            self.module.ports.append(Port(net, OUTPUT, width))
            self.module.stmts.append(
                Connect(LocalTarget(net), InstPort(inst, port, width)))


def extract_partitions(circuit: Circuit,
                       groups: Dict[str, Sequence[str]],
                       base_name: str = "base") -> ExtractedDesign:
    """Partition ``circuit``: extract each group of instance paths into
    its own partition circuit; the remainder becomes the base partition.

    Args:
        circuit: the monolithic design (never mutated).
        groups: partition name -> instance paths to extract.
        base_name: name of the residual partition.
    """
    _validate_groups(circuit, groups, base_name)
    work = circuit.clone()

    # 1-2. uniquify + reparent every selected instance to the top
    members: Dict[str, List[str]] = {}
    group_of: Dict[str, str] = {}
    for gname, paths in groups.items():
        members[gname] = []
        for path in paths:
            _uniquify_path(work, path)
    # reparent after all uniquification (paths stay valid: uniquify does
    # not rename instances)
    for gname, paths in groups.items():
        for path in paths:
            top_name = _reparent_to_top(work, path)
            members[gname].append(top_name)
            group_of[top_name] = gname

    top = work.top_module
    selected = set(group_of)
    conn = top.connect_map()
    wrappers = {g: _WrapperBuilder(g) for g in groups}
    nets: List[RawNet] = []
    net_names: Set[str] = set()

    def fresh_net(base: str) -> str:
        name = base
        i = 0
        while name in net_names:
            i += 1
            name = f"{base}_{i}"
        net_names.add(name)
        return name

    # 3. grouping: route every member port
    removed_stmts: List = []
    for inst_name in sorted(selected):
        gname = group_of[inst_name]
        wb = wrappers[gname]
        inst = top.instance(inst_name)
        child = work.module(inst.module)
        wb.add_member(inst_name, child.name)
        removed_stmts.append(inst)
        for q in child.ports:
            if not q.is_input:
                continue  # outputs handled from the consumer side
            driver = conn.get(f"{inst_name}.{q.name}")
            if driver is not None:
                removed_stmts.append(driver)
            direct = (_trace_direct(top, driver.expr)
                      if driver is not None else None)
            if direct is not None and direct.inst in selected \
                    and direct.width == q.width:
                src_group = group_of[direct.inst]
                if src_group == gname:
                    wb.connect_internal(inst_name, q.name, q.width,
                                        direct.inst, direct.port)
                    continue
                net = fresh_net(f"{inst_name}_{q.name}")
                wrappers[src_group].expose_output(
                    direct.inst, direct.port, q.width, net)
                wb.add_input(net, q.width, inst_name, q.name)
                nets.append(RawNet(net, q.width, src_group, gname))
                continue
            # driven by base logic (or undriven -> constant zero)
            net = fresh_net(f"{inst_name}_{q.name}")
            expr = driver.expr if driver is not None else Lit(0, q.width)
            top.ports.append(Port(net, OUTPUT, q.width))
            top.stmts.append(Connect(LocalTarget(net), expr))
            wb.add_input(net, q.width, inst_name, q.name)
            nets.append(RawNet(net, q.width, base_name, gname))

    for s in removed_stmts:
        top.stmts.remove(s)

    # 4a. clean dead glue, then expose member outputs the base still reads
    _eliminate_dead_glue(top)

    member_reads: Dict[Tuple[str, str], int] = {}
    for expr in _module_exprs(top):
        for leaf in expr.refs():
            if isinstance(leaf, InstPort) and leaf.inst in selected:
                member_reads[(leaf.inst, leaf.port)] = leaf.width

    read_net: Dict[Tuple[str, str], str] = {}
    for (inst_name, port), width in sorted(member_reads.items()):
        gname = group_of[inst_name]
        net = fresh_net(f"{inst_name}_{port}")
        read_net[(inst_name, port)] = net
        top.ports.append(Port(net, INPUT, width))
        wrappers[gname].expose_output(inst_name, port, width, net)
        nets.append(RawNet(net, width, gname, base_name))

    def replace_member_reads(leaf):
        if isinstance(leaf, InstPort) and (leaf.inst, leaf.port) in read_net:
            return Ref(read_net[(leaf.inst, leaf.port)], leaf.width)
        return leaf

    _rewrite_module_exprs(top, replace_member_reads)

    # 4b. assemble per-partition circuits
    partitions: Dict[str, Circuit] = {}
    base_circuit = Circuit(top.name, [copy.deepcopy(m) for m in
                                      work.modules.values()])
    base_circuit.remove_unreachable()
    partitions[base_name] = base_circuit
    for gname, wb in wrappers.items():
        modules = [wb.module] + [copy.deepcopy(m)
                                 for m in work.modules.values()
                                 if m.name != top.name]
        part = Circuit(wb.module.name, modules)
        part.remove_unreachable()
        partitions[gname] = part

    return ExtractedDesign(partitions=partitions, nets=nets,
                           group_members=members, base_name=base_name)


def remove_modules(circuit: Circuit, paths: Sequence[str],
                   base_name: str = "base") -> Circuit:
    """The removal transform of Fig. 5b: delete the selected modules and
    return the remaining design with the boundary punched as top-level
    I/O."""
    design = extract_partitions(circuit, {"removed": list(paths)},
                                base_name=base_name)
    return design.partitions[base_name]


def _validate_groups(circuit: Circuit, groups: Dict[str, Sequence[str]],
                     base_name: str) -> None:
    if not groups:
        raise SelectionError("no partition groups given")
    if base_name in groups:
        raise SelectionError(
            f"group name {base_name!r} collides with the base partition")
    all_paths: List[str] = []
    for gname, paths in groups.items():
        if not paths:
            raise SelectionError(f"group {gname!r} selects no instances")
        for path in paths:
            try:
                circuit.resolve_path(path)
            except IRError as exc:
                raise SelectionError(
                    f"group {gname!r}: bad instance path {path!r}: {exc}")
            all_paths.append(path)
    if len(set(all_paths)) != len(all_paths):
        raise SelectionError("an instance path appears in two groups")
    for a in all_paths:
        for b in all_paths:
            if a != b and b.startswith(a + "."):
                raise SelectionError(
                    f"selected instance {a!r} is an ancestor of {b!r}")
