"""FireRipper's top-level compile flow.

Pipeline (mirrors Sec. III): well-formedness check -> module selection
(explicit or NoC-partition-mode) -> uniquify/reparent/group/extract ->
fast-mode target modifications (when requested) -> boundary analysis and
channel planning (with the exact-mode chain-length check) -> report.

The result, :class:`PartitionedDesign`, carries everything needed to
build and run a multi-FPGA co-simulation:
``design.build_simulation(...)`` wires Simulators, LI-BDN hosts, links
with a chosen transport, and external I/O drivers into a ready
:class:`~repro.harness.partitioned.PartitionedSimulation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import CompileError
from ..firrtl.circuit import Circuit
from ..firrtl.passes.check import check_circuit
from ..harness.partitioned import (
    ConstantSource,
    Link,
    Partition,
    PartitionedSimulation,
    TokenSource,
)
from ..libdn.fame5 import FAME5Host
from ..libdn.wrapper import LIBDNHost
from ..platform.resources import FPGAProfile
from ..platform.transport import TransportModel
from ..rtl.engine import Simulator
from .boundary import BoundaryPlan, plan_boundaries
from .extract import ExtractedDesign, extract_partitions
from .fastmode import apply_fast_mode_transforms, detect_rv_bundles
from .report import PartitionReport, build_report
from .select import select_explicit, select_noc
from .spec import EXACT, FAST, PartitionSpec


@dataclass
class PartitionedDesign:
    """Output of a FireRipper compile."""

    spec: PartitionSpec
    extracted: ExtractedDesign
    plan: BoundaryPlan
    report: PartitionReport

    @property
    def partitions(self) -> Dict[str, Circuit]:
        return self.extracted.partitions

    @property
    def base_name(self) -> str:
        return self.extracted.base_name

    def build_simulation(
            self,
            transport: Union[TransportModel,
                             Dict[Tuple[str, str], TransportModel]],
            host_freq_mhz: Union[float, Dict[str, float]] = 30.0,
            sources: Optional[Dict[Tuple[str, str], TokenSource]] = None,
            record_outputs: bool = False,
            fame5_merge: Optional[Dict[str, Sequence[str]]] = None,
            advance_overhead_ns: float = 0.0,
            channel_capacity: int = 0,
            tracer=None,
            telemetry=None
            ) -> PartitionedSimulation:
        """Instantiate the full co-simulation for this design.

        Args:
            transport: one transport for every link, or a map keyed by
                (src partition, dst partition).
            host_freq_mhz: bitstream frequency, global or per partition.
            sources: drivers for external input channels; any external
                input channel without a source gets constant zeros.
            record_outputs: keep tokens from external output channels.
            fame5_merge: merged-FPGA name -> partition group names to
                multithread onto one FPGA via FAME-5 (Sec. VI-B).  The
                groups' LI-BDN hosts become threads ``t0..tN-1`` of one
                partition, which then spends N host cycles per target
                cycle while sharing combinational resources.
            tracer: optional
                :class:`~repro.observability.tracer.Tracer` threaded
                through the harness, units and links (null by default).
            telemetry: optional
                :class:`~repro.telemetry.Telemetry` session — metrics
                registry plus cycle-keyed sampler (null by default).
        """
        fame5_merge = dict(fame5_merge or {})
        group_to_merged: Dict[str, Tuple[str, int]] = {}
        for merged, members in fame5_merge.items():
            for i, g in enumerate(members):
                if g not in self.partitions:
                    raise CompileError(
                        f"fame5_merge references unknown partition {g!r}")
                group_to_merged[g] = (merged, i)

        def locate(part: str, chan: str) -> Tuple[str, str]:
            if part in group_to_merged:
                merged, idx = group_to_merged[part]
                return merged, f"t{idx}:{chan}"
            return part, chan

        partitions: List[Partition] = []
        for name, circuit in self.partitions.items():
            if name in group_to_merged:
                continue  # built as a FAME-5 thread below
            chans = self.plan.channels[name]
            host = LIBDNHost(Simulator(circuit), chans.in_specs,
                             chans.out_specs, name=name)
            freq = (host_freq_mhz.get(name, 30.0)
                    if isinstance(host_freq_mhz, dict) else host_freq_mhz)
            partitions.append(Partition(
                name, host, freq,
                advance_overhead_ns=advance_overhead_ns))
        for merged, members in fame5_merge.items():
            hosts = [None] * len(members)
            for g in members:
                _, idx = group_to_merged[g]
                chans = self.plan.channels[g]
                hosts[idx] = LIBDNHost(
                    Simulator(self.partitions[g]), chans.in_specs,
                    chans.out_specs, name=g)
            freq = (host_freq_mhz.get(merged, 30.0)
                    if isinstance(host_freq_mhz, dict) else host_freq_mhz)
            partitions.append(Partition(
                merged, FAME5Host.from_hosts(hosts, name=merged), freq,
                advance_overhead_ns=advance_overhead_ns))

        links: List[Link] = []
        for lp in self.plan.links:
            if isinstance(transport, dict):
                key = (lp.src[0], lp.dst[0])
                model = transport.get(key) or transport.get(
                    (lp.dst[0], lp.src[0]))
                if model is None:
                    raise CompileError(
                        f"no transport configured for link {key}")
            else:
                model = transport
            links.append(Link(locate(*lp.src), locate(*lp.dst), model))

        all_sources: Dict[Tuple[str, str], TokenSource] = {}
        for name, chans in self.plan.channels.items():
            for chan_name in chans.external_in:
                spec = next(s for s in chans.in_specs
                            if s.name == chan_name)
                all_sources[locate(name, chan_name)] = ConstantSource(
                    {p: 0 for p in spec.port_names})
        for key, src in (sources or {}).items():
            all_sources[locate(*key)] = src
        return PartitionedSimulation(
            partitions, links, sources=all_sources,
            seed_boundary=(self.spec.mode == FAST),
            record_outputs=record_outputs,
            channel_capacity=channel_capacity,
            tracer=tracer,
            telemetry=telemetry)


class FireRipper:
    """The partitioning compiler (one instance per PartitionSpec)."""

    def __init__(self, spec: PartitionSpec):
        self.spec = spec

    def compile(self, circuit: Circuit,
                profile: Optional[FPGAProfile] = None,
                transport: Optional[TransportModel] = None,
                host_freq_mhz: Optional[float] = None) -> PartitionedDesign:
        """Partition ``circuit`` per the spec.

        Raises :class:`~repro.errors.CombChainError` in exact-mode when a
        boundary combinational chain exceeds length two, and
        :class:`~repro.errors.SelectionError` for bad selections.
        """
        check_circuit(circuit)
        if self.spec.groups is not None:
            groups = select_explicit(circuit, self.spec.groups)
        else:
            groups = select_noc(circuit, self.spec.noc)
        extracted = extract_partitions(circuit, groups,
                                       base_name=self.spec.base_name)
        if self.spec.mode == FAST:
            bundles = None
            if self.spec.rv_bundles is not None:
                wanted = set(self.spec.rv_bundles)
                bundles = [b for b in detect_rv_bundles(extracted.nets)
                           if b.prefix in wanted]
                missing = wanted - {b.prefix for b in bundles}
                if missing:
                    raise CompileError(
                        f"ready-valid bundles not found at the boundary: "
                        f"{sorted(missing)}")
            apply_fast_mode_transforms(extracted, bundles)
        for part in extracted.partitions.values():
            check_circuit(part)
        plan = plan_boundaries(extracted, self.spec.mode)
        report = build_report(extracted, plan, profile=profile,
                              transport=transport,
                              host_freq_mhz=host_freq_mhz)
        return PartitionedDesign(spec=self.spec, extracted=extracted,
                                 plan=plan, report=report)
