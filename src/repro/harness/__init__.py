"""Simulation harnesses: monolithic FireSim-style runs, partitioned
multi-FPGA co-simulation with a calibrated timing overlay, the analytic
throughput model used for quick user feedback, and the software RTL
simulator baseline the paper compares against.
"""

from .hooks import LinkHooks, PartitionHooks
from .metrics import SimulationResult, cycle_count_error_pct
from .monolithic import MonolithicSimulation
from .partitioned import (
    ConstantSource,
    FunctionSource,
    Link,
    Partition,
    PartitionedSimulation,
)
from .analytic import analytic_rate_hz
from .software_sim import software_rtl_sim_rate_hz

__all__ = [
    "SimulationResult",
    "cycle_count_error_pct",
    "MonolithicSimulation",
    "Partition",
    "Link",
    "LinkHooks",
    "PartitionHooks",
    "PartitionedSimulation",
    "ConstantSource",
    "FunctionSource",
    "analytic_rate_hz",
    "software_rtl_sim_rate_hz",
]
