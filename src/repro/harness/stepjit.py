"""Compiled partition step functions: JIT for the wavefront hot loop.

The precompiled wavefront schedule (`partitioned._compile_schedule`)
already resolves the static topology into flat op lists, but the
interpreter (`_run_unit`) still *walks* those lists for every unit on
every pass: method dispatch into ``try_fire_outputs``, outbox list
churn, per-token dict lookups, and one redundant RTL ``eval`` per fired
output channel.  This module instead *generates* one straight-line
Python step function per partition from its :class:`_PartPlan` and
``exec``-compiles it — the same strategy the RTL engine uses for its
comb/tick functions, lifted one layer up, and the same move GSIM and
LightningSimV2 make for single-node simulation rate.

What the generated function inlines:

* **source feeding** — the empty-queue check and packed refill per
  source-fed input channel;
* **unit firing** — the LI-BDN fire FSM per output channel: dep-queue
  readiness, env pokes by precomputed ``(port, offset, mask)`` fields,
  the compiled comb function, and word packing, with the outbox
  bypassed entirely (the fired word flows to the timing op through a
  local);
* **redundant-eval elision** — ``eval`` is a pure function of the
  signal env and register/memory state, so a fire whose output channel
  has no comb deps only needs an eval when something changed since the
  last settle (a dep poke or a ``tick``).  A per-unit dirty flag makes
  every later no-dep fire of the same settle a pure re-pack — in fast
  mode this collapses k+1 evals per target cycle to 1;
* **the timing overlay** — serdes/occupancy/wire/credit arithmetic with
  every per-op constant folded into a float literal, the credit-window
  lookup bound to the live consume deque, and busy-cursor/span
  accumulation carried in locals (written back once per call);
* **token pushes** — repack plans emitted as literal bit-move
  expressions, destination channel/arrival queues bound directly for
  local deliveries, the router's ``deliver_remote`` bound for the
  process backends;
* **the advance** — input pops, pokes, comb+tick, fire-FSM re-arm and
  target-cycle bump, plus the isolated-partition batching loop when the
  schedule marks the unit batchable.

Dep-free units (NoC routers, FAST-extracted tiles) additionally take
the **fused RTL kernel tier**: per-unit ``fire``/``adv``/``cyc``
functions compiled from the flattened elaboration that evaluate only
the live cone of the output/tick references, carry every intermediate
in locals, and commit just registers/memories back to the env
(:func:`_compile_kernel`; cached as ``unit._stepjit_kernels``).  The
``cyc`` kernel also reports whether the register/memory state reached
a fixed point — while it holds and the unit's inputs repeat, the step
function skips RTL evaluation entirely and replays the cached output
words (exact: pure logic over equal state and equal inputs cannot
differ).  See the "kernel tier" comment block below for the env
staleness contract this buys speed with.

Tracer and telemetry emit sites are *compiled out*: a partition is only
eligible when the null sinks are installed, so the generated code
contains no flag checks at all.  The same applies to reliability
layers, fault injectors, switch fabrics and dict-incompatible peer
layouts — :func:`partition_jit_reason` rejects those partitions and the
harness falls back to the interpreted ``_run_unit`` for them (per
partition, not globally).  A runtime guard keeps even compiled
partitions exact: a unit whose outbox is unexpectedly non-empty (e.g. a
checkpoint captured mid-``host_step``) delegates that pass to the
interpreter.

Bit-exactness contract: for every partition the compiled function
performs the *same mutations in the same order* as ``_run_unit`` — same
float-op associativity in the timing math, same deque traffic, same
fired/arrival/credit bookkeeping — so ``SimulationResult`` (including
``detail``) and all checkpointable state are bit-identical with the
JIT on or off, on every backend.  The differential tests in
``tests/fuzz/test_stepjit_corpus.py`` pin exactly that.

Selection: ``REPRO_STEPJIT=0`` (or ``off``/``false``/``no``) disables
the JIT globally; ``PartitionedSimulation.stepjit`` (the CLI's
``--no-jit``) overrides per simulation.  ``repro jit --dump`` prints
the generated source.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..libdn.codec import INCOMPATIBLE
from ..rtl.elaborate import FlatAssign
from ..rtl.engine import _ref_names
from ..rtl.eval import CODEGEN_HELPERS, compile_expr, mask

__all__ = [
    "stepjit_enabled",
    "partition_jit_reason",
    "compile_step_functions",
    "generate_partition_source",
    "generate_sources",
]

_FALSEY = frozenset(("0", "off", "false", "no"))


def stepjit_enabled(sim=None) -> bool:
    """Resolve the JIT on/off decision: per-sim override first
    (``sim.stepjit``), then ``REPRO_STEPJIT`` (default: on)."""
    override = getattr(sim, "stepjit", None) if sim is not None else None
    if override is not None:
        return bool(override)
    value = os.environ.get("REPRO_STEPJIT", "").strip().lower()
    return value not in _FALSEY


# --------------------------------------------------------------------------
# eligibility: the clean-hooks guard
# --------------------------------------------------------------------------


def _unit_jit_reason(sim, up) -> Optional[str]:
    """Why one unit plan cannot be compiled (None when it can)."""
    unit = up.unit
    label = f"{up.prefix}{unit.name}"
    if getattr(unit, "step_bindings", None) is None:
        return f"{label}: host exposes no step_bindings fast path"
    rtl = getattr(unit, "sim", None)
    if rtl is None or not getattr(rtl, "compiled", False):
        return f"{label}: RTL engine runs interpreted (compiled=False)"
    for ch in list(unit.in_channels.values()) \
            + list(unit.out_channels.values()):
        if ch.capacity is not None:
            return (f"{label}: channel {ch.name!r} carries a host "
                    f"capacity bound")
    for op in up.out_ops.values():
        link = op.link
        if link is None:
            continue
        if not op.clean:
            return (f"{label}: link {link.key} has a reliability layer "
                    f"or fault injector")
        if op.switch is not None:
            return f"{label}: link {link.key} crosses a switch fabric"
        if op.repack is INCOMPATIBLE:
            return (f"{label}: link {link.key} peer layouts need the "
                    f"dict fallback")
        if sim._in_channel_by_key[link.dst].capacity is not None:
            return (f"{label}: link {link.key} destination channel is "
                    f"capacity-bounded")
    return None


def partition_jit_reason(sim, pplan) -> Optional[str]:
    """Why a partition must stay on the interpreter (None = JIT-able).

    A partition is eligible only when every emit site the generator
    would have to preserve is a null sink (tracer off, telemetry off)
    and every unit/link is on the clean fast path."""
    if sim._trace:
        return "tracer attached"
    if sim._metrics_on:
        return "telemetry sampling enabled"
    for up in pplan.unit_plans:
        reason = _unit_jit_reason(sim, up)
        if reason is not None:
            return reason
    return None


# --------------------------------------------------------------------------
# code generation
# --------------------------------------------------------------------------


class _Binder:
    """Assigns stable generated names to pre-bound Python objects.

    Objects are deduplicated by identity, so e.g. an arrival deque that
    is both a fire dependency and an advance input binds once."""

    def __init__(self):
        self.values: Dict[str, object] = {}
        self._by_id: Dict[int, str] = {}
        self._n = 0

    def bind(self, obj, hint: str = "g") -> str:
        name = self._by_id.get(id(obj))
        if name is None:
            name = f"_{hint}{self._n}"
            self._n += 1
            self._by_id[id(obj)] = name
            self.values[name] = obj
        return name


class _Writer:
    def __init__(self):
        self.lines: List[str] = []

    def emit(self, level: int, text: str) -> None:
        self.lines.append("    " * level + text)


def _f(value: float) -> str:
    """Float literal that round-trips exactly (repr contract)."""
    return repr(float(value))


def _unpack_lines(env: str, word: str, fields) -> List[str]:
    out = []
    for port, offset, mask in fields:
        if offset:
            out.append(f"{env}[{port!r}] = ({word} >> {offset}) & {mask}")
        else:
            out.append(f"{env}[{port!r}] = {word} & {mask}")
    return out


def _pack_expr(env: str, fields) -> str:
    if not fields:
        return "0"
    parts = []
    for port, offset, _mask in fields:
        if offset:
            parts.append(f"{env}[{port!r}] << {offset}")
        else:
            parts.append(f"{env}[{port!r}]")
    return " | ".join(parts)


def _repack_expr(word: str, plan) -> str:
    """Inline a repack plan's bit moves (``plan`` is a tuple of
    ``(src_offset, mask, dst_offset)`` moves; identity is handled by
    the caller)."""
    parts = []
    for s_off, mask, d_off in plan:
        if s_off:
            expr = f"(({word} >> {s_off}) & {mask})"
        else:
            expr = f"({word} & {mask})"
        if d_off:
            expr = f"{expr} << {d_off}"
        parts.append(expr)
    return " | ".join(parts) if parts else "0"


def _token_dict_expr(word: str, fields) -> str:
    """Inline ``codec.decode(word)`` as a dict literal (same key order:
    spec order)."""
    items = []
    for port, offset, mask in fields:
        if offset:
            items.append(f"{port!r}: ({word} >> {offset}) & {mask}")
        else:
            items.append(f"{port!r}: {word} & {mask}")
    return "{" + ", ".join(items) + "}"


# --------------------------------------------------------------------------
# fused RTL kernels (the specialization tier below the step functions)
# --------------------------------------------------------------------------
#
# The RTL engine's generic ``_comb`` settles *every* combinational signal
# and writes each one back into the env dict; its ``_tick`` then re-reads
# the settled values out of the env, one dict lookup per reference.  For
# a dep-free (fast-mode) unit the harness only ever observes three
# projections of that work: the packed output words, the register/memory
# next-state, and the env entries that hold registers and top inputs.
# The kernels below specialize exactly those projections:
#
# * the live cone is computed per kernel (dead assigns are dropped),
# * every intermediate stays a Python local end-to-end — the env is
#   read once per referenced register/input and written only for
#   register commits,
# * the tick next-state expressions read the comb *locals* directly
#   instead of round-tripping through the env,
# * the packed output words are built from locals and returned.
#
# Three kernels per unit: ``fire(env, mems) -> words`` (pack cone only),
# ``adv(env, mems)`` (tick cone + commit), and ``cyc(env, mems) ->
# words`` (the fused single-settle cycle: when the next input words
# equal the currently-poked values, one comb settle serves both the
# fire and the advance — eval is pure, so the second settle the
# interpreter performs is provably identical).
#
# Consequence (documented contract): compiled kernels do *not* write
# combinational intermediates back into the RTL env, so signal peeks
# between passes may observe stale comb values on kernel-tier units.
# Registers, memories, inputs, output tokens, timing spans and every
# checkpointable harness structure stay bit-identical — a restored
# checkpoint re-settles from registers and inputs on the next pass.
# Use ``REPRO_STEPJIT=0`` (or ``--no-jit``) for signal-level debugging.


def _compile_kernel(elab, pack_lists, do_tick: bool, tag: str,
                    converged: bool = False):
    """Generate one specialized kernel for ``elab``.

    ``pack_lists`` is a list of pack-field lists (one per output
    channel, in fire order); the kernel returns the packed words in
    that order (a bare int for one channel).  ``do_tick`` fuses the
    register/memory commit into the same settle.  ``converged``
    appends a quiescence flag to the return value: True when the tick
    was a fixed point (every register next-value equals its current
    value and every enabled memory write re-writes the stored word) —
    the caller may then skip the next settle entirely if the inputs
    repeat, because pure logic over equal state and equal inputs
    reproduces the same words and the same fixed point."""
    ids: Dict[str, str] = {}

    def ident(name: str) -> str:
        if name not in ids:
            ids[name] = f"v{len(ids)}"
        return ids[name]

    comb_targets = {a.name for a in elab.assigns}

    # live cone: pack ports plus (when ticking) every name the
    # register-next / memory-write expressions reference
    live: Set[str] = set()
    for fields in pack_lists:
        for port, _off, _msk in fields:
            live.add(port)
    tick_regs = [r for r in elab.regs.values() if r.next is not None]
    if do_tick:
        for reg in tick_regs:
            live.update(_ref_names(reg.next))
        for mw in elab.writes:
            live.update(_ref_names(mw.en))
            live.update(_ref_names(mw.addr))
            live.update(_ref_names(mw.data))
    kept = []
    for a in reversed(elab.assigns):  # assigns are in topo order
        if a.name in live:
            kept.append(a)
            if isinstance(a, FlatAssign):
                live.update(_ref_names(a.expr))
            else:  # FlatMemRead
                live.update(_ref_names(a.addr))
    kept.reverse()

    loads: List[str] = []
    seen_loads: Set[str] = set()

    def note_load(name: str) -> None:
        if name not in comb_targets and name not in seen_loads:
            seen_loads.add(name)
            loads.append(name)

    def compile_with_loads(expr) -> str:
        for leaf in _ref_names(expr):
            note_load(leaf)
        return compile_expr(expr, ident)

    body: List[str] = []
    for a in kept:
        if isinstance(a, FlatAssign):
            body.append(f"    {ident(a.name)} = {compile_with_loads(a.expr)}")
        else:
            addr = compile_with_loads(a.addr)
            body.append(
                f"    {ident(a.name)} = mems[{a.mem!r}][({addr}) % {a.depth}]"
            )

    tick_lines: List[str] = []
    commit_lines: List[str] = []
    if do_tick:
        for i, reg in enumerate(tick_regs):
            code = compile_with_loads(reg.next)
            tick_lines.append(f"    n{i} = ({code}) & {mask(reg.width)}")
            commit_lines.append(f"    env[{reg.name!r}] = n{i}")
        for j, mw in enumerate(elab.writes):
            en = compile_with_loads(mw.en)
            addr = compile_with_loads(mw.addr)
            data = compile_with_loads(mw.data)
            tick_lines.append(
                f"    w{j} = (({addr}) % {mw.depth}, {data}) if {en} else None")
            commit_lines.append(
                f"    if w{j} is not None: mems[{mw.mem!r}][w{j}[0]] = w{j}[1]")
        if converged:
            # fixed-point test against the *pre-commit* values (the
            # locals still hold them here); short-circuits on the first
            # live register, so active cycles pay almost nothing
            terms = []
            for i, reg in enumerate(tick_regs):
                note_load(reg.name)  # unreferenced regs still compare
                terms.append(f"n{i} == {ident(reg.name)}")
            for j, mw in enumerate(elab.writes):
                terms.append(f"(w{j} is None or "
                             f"mems[{mw.mem!r}][w{j}[0]] == w{j}[1])")
            tick_lines.append("    _q = " + (" and ".join(terms)
                                             if terms else "True"))

    rets: List[str] = []
    for fields in pack_lists:
        for port, _off, _msk in fields:
            note_load(port)  # e.g. a register driven straight to a port
        parts = [f"{ident(p)} << {off}" if off else ident(p)
                 for p, off, _m in fields]
        rets.append("(" + " | ".join(parts) + ")" if parts else "0")

    if converged:
        rets.append("_q")
    prologue = [f"    {ident(n)} = env[{n!r}]" for n in loads]
    lines = prologue + body + tick_lines + commit_lines
    if rets:
        lines.append("    return " + ", ".join(rets))
    if not lines:
        lines = ["    pass"]
    src = ("def _k(env, mems, _div=_div, _rem=_rem):\n"
           + "\n".join(lines) + "\n")
    namespace: Dict[str, object] = dict(CODEGEN_HELPERS)
    exec(compile(src, f"<stepjit-kernel:{tag}>", "exec"), namespace)
    fn = namespace["_k"]
    fn._stepjit_source = src  # for ``repro jit --dump``
    return fn


def _unit_kernels(unit, fire_plans):
    """(fire, adv, cyc) kernels for ``unit``, cached on the unit (the
    elaboration and channel layouts are immutable per host)."""
    cached = getattr(unit, "_stepjit_kernels", None)
    if cached is not None:
        return cached
    elab = unit.sim.elab
    pack_lists = [entry[3] for entry in fire_plans]
    tag = unit.name
    fire = (_compile_kernel(elab, pack_lists, False, f"fire:{tag}")
            if pack_lists else None)
    adv = _compile_kernel(elab, [], True, f"adv:{tag}")
    cyc = (_compile_kernel(elab, pack_lists, True, f"cyc:{tag}",
                           converged=True)
           if pack_lists else None)
    kern = (fire, adv, cyc)
    try:
        unit._stepjit_kernels = kern
    except (AttributeError, TypeError):  # slotted host: rebuild per compile
        pass
    return kern


class _PartitionCodegen:
    """Emits one partition's ``_step(target_cycles)`` function."""

    def __init__(self, sim, pplan, eval_dedup: bool = True):
        self.sim = sim
        self.pplan = pplan
        self.eval_dedup = eval_dedup
        self.b = _Binder()
        self.w = _Writer()
        part = pplan.part
        b = self.b
        self.PT = b.bind(part, "pt")
        self.SP = b.bind(part.hooks.spans, "sp")
        self.SIM = b.bind(sim, "sm")
        self.RI = b.bind(sim._run_unit, "ri")
        self.LEN = b.bind(len, "len")
        self.RANGE = b.bind(range, "rng")
        router = sim.router
        self.RC = (b.bind(router.consumed, "rc")
                   if router is not None else None)
        self.router = router
        #: one mutable dirty cell per generic-tier unit (keyed by unit
        #: index), part of the bindings; True means the RTL env may be
        #: unsettled (eval needed before a no-dep fire can re-pack).
        #: Kernel-tier units need no dirty tracking — their kernels
        #: never depend on a settled env.
        self.dirty_cells: Dict[int, list] = {}
        #: unit indexes running on fused RTL kernels (for the report)
        self.kernel_units: List[int] = []

    # -- fragments --------------------------------------------------------

    def _feed_lines(self, source_ops) -> List[Tuple[int, str]]:
        """Source feeding: the ``_feed_sources`` body, inlined."""
        b = self.b
        out = []
        for key, channel, source, unit in source_ops:
            SQ = b.bind(channel.queue, "sq")
            CH = b.bind(channel, "ch")
            NW = b.bind(source.next_word, "nw")
            SU = b.bind(unit, "u")
            CD = b.bind(channel.codec, "cd")
            AQ = b.bind(self.sim._arrivals[key], "aq")
            out.append((0, f"if not {SQ}:"))
            out.append((1, f"{SQ}.append({NW}({SU}.target_cycle, {CD}))"))
            out.append((1, f"{CH}.total_enqueued += 1"))
            out.append((1, f"{AQ}.append(0.0)"))
        return out

    def _sync_out(self) -> str:
        return (f"{self.PT}.busy_until = busy; "
                f"{self.SP}.link_wait_ns = lw; "
                f"{self.SP}.credit_stall_ns = cs; "
                f"{self.SP}.serdes_ns = sd; "
                f"{self.SP}.compute_ns = cp; "
                f"{self.SP}.sync_ns = sy; "
                f"{self.SIM}.total_tokens = tt")

    def _sync_in(self) -> str:
        return (f"busy = {self.PT}.busy_until; "
                f"lw = {self.SP}.link_wait_ns; "
                f"cs = {self.SP}.credit_stall_ns; "
                f"sd = {self.SP}.serdes_ns; "
                f"cp = {self.SP}.compute_ns; "
                f"sy = {self.SP}.sync_ns; "
                f"tt = {self.SIM}.total_tokens")

    def _emit_fire(self, L: int, uid: int, j: int, entry, names: dict
                   ) -> None:
        """One output channel's fire FSM (try_fire_outputs, inlined;
        the fired word is kept in a local instead of the outbox)."""
        w, b = self.w, self.b
        name, out_ch, dep_plans, pack_fields = entry
        F, ENV, MEMS, C = (names["F"], names["ENV"], names["MEMS"],
                           names["C"])
        OQ = b.bind(out_ch.queue, "oq")
        OC = b.bind(out_ch, "oc")
        wvar = f"w{uid}_{j}"
        w.emit(L, f"if not {F}[{name!r}]:")
        if dep_plans:
            cond = " and ".join(b.bind(dc.queue, "dq")
                                for dc, _ in dep_plans)
            w.emit(L + 1, f"if {cond}:")
            Lf = L + 2
            for dep_ch, fields in dep_plans:
                DQ = b.bind(dep_ch.queue, "dq")
                if fields:
                    w.emit(Lf, f"_h = {DQ}[0]")
                    for line in _unpack_lines(ENV, "_h", fields):
                        w.emit(Lf, line)
            w.emit(Lf, f"{C}({ENV}, {MEMS})")
            if self.eval_dedup:
                w.emit(Lf, f"dty{uid} = False")
        else:
            Lf = L + 1
            if self.eval_dedup:
                w.emit(Lf, f"if dty{uid}:")
                w.emit(Lf + 1, f"{C}({ENV}, {MEMS})")
                w.emit(Lf + 1, f"dty{uid} = False")
            else:
                w.emit(Lf, f"{C}({ENV}, {MEMS})")
        w.emit(Lf, f"{wvar} = {_pack_expr(ENV, pack_fields)}")
        w.emit(Lf, f"{OQ}.append({wvar})")
        w.emit(Lf, f"{OC}.total_enqueued += 1")
        w.emit(Lf, f"{F}[{name!r}] = True")
        w.emit(Lf, "progress = True")

    def _emit_credit(self, L: int, op) -> None:
        """Credit-window stall + single-feeder trim (the interpreter's
        channel_capacity block, with the consume deque pre-bound)."""
        w, b, sim = self.w, self.b, self.sim
        link = op.link
        LK = b.bind(link, "lk")
        CQ = b.bind(op.consume_q, "cq")
        CB = b.bind(sim._consume_base, "cb")
        CBG = b.bind(sim._consume_base.get, "cbg")
        DK = b.bind(link.dst, "dk")
        cap = sim.channel_capacity
        w.emit(L, f"_ci = {LK}.tokens - {cap}")
        w.emit(L, "if _ci >= 0:")
        w.emit(L + 1, f"_rel = _ci - {CBG}({DK}, 0)")
        w.emit(L + 1, f"_ln = {self.LEN}({CQ})")
        w.emit(L + 1, "if 0 <= _rel < _ln:")
        w.emit(L + 2, f"_c = {CQ}[_rel]")
        w.emit(L + 2, "if _c > _st:")
        w.emit(L + 3, "_st = _c")
        w.emit(L + 1, "elif _rel >= _ln and _ln:")
        w.emit(L + 2, f"_c = {CQ}[-1]")
        w.emit(L + 2, "if _c > _st:")
        w.emit(L + 3, "_st = _c")
        if sim._dst_link_count.get(link.dst) == 1:
            w.emit(L + 1, "if _rel > 0 and _ln:")
            w.emit(L + 2, "_d = _rel if _rel < _ln - 1 else _ln - 1")
            w.emit(L + 2, f"for _x in {self.RANGE}(_d):")
            w.emit(L + 3, f"{CQ}.popleft()")
            w.emit(L + 2, f"{CB}[{DK}] = {CBG}({DK}, 0) + _d")

    def _emit_out_op(self, L: int, uid: int, j: int, name: str, op
                     ) -> None:
        """One fired token's timing + delivery (the drain half of
        ``_run_unit``'s while body, for one op)."""
        w, b, sim = self.w, self.b, self.sim
        part = self.pplan.part
        wvar = f"w{uid}_{j}"
        w.emit(L, f"if {wvar} is not None:")
        Lo = L + 1
        # dependent-input arrival wait (link_wait span)
        w.emit(Lo, "_da = 0.0")
        for key in op.dep_keys:
            DQ = b.bind(sim._arrivals[key], "aq")
            w.emit(Lo, f"if {DQ} and {DQ}[0] > _da:")
            w.emit(Lo + 1, f"_da = {DQ}[0]")
        w.emit(Lo, "_ds = busy if busy > _da else _da")
        w.emit(Lo, "lw += _ds - busy")
        link = op.link
        if link is None:
            # bridge tap: drained by wide DMA batches, effectively free
            w.emit(Lo, "busy = _ds")
            if sim.record_outputs:
                OL = b.bind(sim.output_log, "ol")
                OLG = b.bind(sim.output_log.get, "olg")
                BK = b.bind((part.name, op.full), "bk")
                w.emit(Lo, f"_l = {OLG}({BK})")
                w.emit(Lo, "if _l is None:")
                w.emit(Lo + 1, f"_l = {OL}[{BK}] = []")
                w.emit(Lo, "_l.append("
                       + _token_dict_expr(wvar, op.codec.fields) + ")")
            return
        w.emit(Lo, "_st = _ds")
        if sim.channel_capacity is not None:
            self._emit_credit(Lo, op)
        w.emit(Lo, "cs += _st - _ds")
        LK = b.bind(link, "lk")
        w.emit(Lo, f"sd += {_f(op.tx_ns)}")
        w.emit(Lo, f"busy = _st + {_f(op.tx_ns)}")
        w.emit(Lo, f"_nf = {LK}.next_free")
        w.emit(Lo, "_dep = busy if busy > _nf else _nf")
        w.emit(Lo, f"{LK}.next_free = _dep + {_f(op.occupancy_ns)}")
        w.emit(Lo, f"_arr = _dep + {_f(op.wire_ns)}")
        if op.repack is None:
            mw = wvar
        else:
            mw = "_mw"
            w.emit(Lo, f"_mw = {_repack_expr(wvar, op.repack)}")
        w.emit(Lo, f"{LK}.busy_ns += {_f(op.occupancy_ns)}")
        rx = _f(op.rx_ns)
        if self.router is not None \
                and not self.router.is_local(op.dst_part_name):
            RD = b.bind(self.router.deliver_remote, "rd")
            w.emit(Lo, f"{RD}({LK}, {mw}, _arr + {rx}, {rx})")
        else:
            # apply_link_delivery, inlined (metrics/trace compiled out)
            dst_ch = sim._in_channel_by_key[link.dst]
            DQ2 = b.bind(dst_ch.queue, "xq")
            DC = b.bind(dst_ch, "xc")
            AQ2 = b.bind(sim._arrivals[link.dst], "aq")
            DH = b.bind(link.depth_hist, "dh")
            DHG = b.bind(link.depth_hist.get, "dhg")
            w.emit(Lo, f"{DQ2}.append({mw})")
            w.emit(Lo, f"{DC}.total_enqueued += 1")
            w.emit(Lo, f"{AQ2}.append(_arr + {rx})")
            w.emit(Lo, f"_d = {self.LEN}({AQ2})")
            w.emit(Lo, f"{DH}[_d] = {DHG}(_d, 0) + 1")
        w.emit(Lo, f"{LK}.tokens += 1")
        w.emit(Lo, "tt += 1")

    def _emit_advance_timing(self, La: int, up) -> None:
        """The advance's timing bookkeeping: arrival pops, link-wait
        and compute spans, credit consume records, busy cursor."""
        w, b, sim = self.w, self.b, self.sim
        part = up.part
        w.emit(La, "_ir = 0.0")
        for key in up.in_keys:
            IA = b.bind(sim._arrivals[key], "aq")
            w.emit(La, f"if {IA}:")
            w.emit(La + 1, f"_a = {IA}.popleft()")
            w.emit(La + 1, "if _a > _ir:")
            w.emit(La + 2, "_ir = _a")
        w.emit(La, "_st = busy if busy > _ir else _ir")
        w.emit(La, "lw += _st - busy")
        hc = _f(up.host_cycle_ns)
        if sim.channel_capacity is not None and up.consume_keys:
            w.emit(La, f"_cn = _st + {hc}")
            for key in up.consume_keys:
                CT = b.bind(sim._consume_times[key], "cq")
                w.emit(La, f"{CT}.append(_cn)")
                if self.RC is not None:
                    CK = b.bind(key, "ck")
                    w.emit(La, f"{self.RC}({CK}, _cn)")
        w.emit(La, f"cp += {hc}")
        ovh = part.advance_overhead_ns
        if ovh:
            w.emit(La, f"sy += {_f(ovh)}")
            w.emit(La, f"busy = _st + {hc} + {_f(ovh)}")
        else:
            w.emit(La, f"busy = _st + {hc}")

    def _emit_advance(self, L: int, uid: int, up, names: dict,
                      batch: bool) -> None:
        """The fireFSM advance: pops, pokes, comb+tick, re-arm."""
        w, b = self.w, self.b
        unit = up.unit
        F, ENV, MEMS, C, T, RTL, U = (
            names["F"], names["ENV"], names["MEMS"], names["C"],
            names["T"], names["RTL"], names["U"])
        fire_names = [e[0] for e in names["fire_plans"]]
        in_qs = [b.bind(ch.queue, "iq") for ch, _ in names["in_plans"]]
        conds = [f"{F}[{n!r}]" for n in fire_names] + list(in_qs)
        w.emit(L, "if " + (" and ".join(conds) if conds else "True")
               + ":")
        La = L + 1
        self._emit_advance_timing(La, up)
        # unit.advance(), inlined
        for ch, fields in names["in_plans"]:
            IQ = b.bind(ch.queue, "iq")
            w.emit(La, f"_w = {IQ}.popleft()")
            for line in _unpack_lines(ENV, "_w", fields):
                w.emit(La, line)
        w.emit(La, f"{C}({ENV}, {MEMS})")
        w.emit(La, f"{T}({ENV}, {MEMS})")
        w.emit(La, f"{RTL}.cycle += 1")
        for n in unit._fired:
            w.emit(La, f"{F}[{n!r}] = False")
        for ch in names["out_channels"]:
            OQ = b.bind(ch.queue, "oq")
            w.emit(La, f"if {OQ}:")
            w.emit(La + 1, f"{OQ}.popleft()")
        w.emit(La, f"{U}.target_cycle += 1")
        w.emit(La, "progress = True")
        if self.eval_dedup:
            w.emit(La, f"dty{uid} = True")
        if batch:
            w.emit(La, "advanced = True")

    def _emit_fallback(self, Lu: int, uid: int, up, names: dict,
                       guard: str, use_dty: bool,
                       qs: Optional[str] = None) -> None:
        """The interpreter delegation block behind a runtime guard."""
        w = self.w
        UP = self.b.bind(up, "up")
        w.emit(Lu, f"if {guard}:")
        w.emit(Lu + 1, self._sync_out())
        w.emit(Lu + 1, "try:")
        w.emit(Lu + 2, f"if {self.RI}({UP}, target_cycles):")
        w.emit(Lu + 3, "progress = True")
        w.emit(Lu + 1, "finally:")
        w.emit(Lu + 2, self._sync_in())
        if use_dty:
            w.emit(Lu + 1, f"dty{uid} = True")
        if qs is not None:
            # the interpreter may have moved RTL state behind the
            # kernels' back: drop the quiescence cache
            w.emit(Lu + 1, f"{qs}[0] = False")

    def _emit_unit_kernel(self, L: int, uid: int, up, names: dict,
                          kern) -> None:
        """Kernel-tier unit pass: fused RTL kernels replace the generic
        comb/tick calls.  When the pending input words equal the
        currently-poked values (every field), the fire and the advance
        share ONE settle (the ``cyc`` kernel) — otherwise the pass
        splits into the cone-reduced ``fire`` and ``adv`` kernels."""
        w, b, sim = self.w, self.b, self.sim
        unit = up.unit
        F, ENV, MEMS, RTL, U = (names["F"], names["ENV"], names["MEMS"],
                                names["RTL"], names["U"])
        fire_plans = names["fire_plans"]
        in_plans = names["in_plans"]
        k = len(fire_plans)
        KF = b.bind(kern[0], "kf") if kern[0] is not None else None
        KA = b.bind(kern[1], "ka")
        KC = b.bind(kern[2], "kc") if kern[2] is not None else None
        in_qs = [b.bind(ch.queue, "iq") for ch, _ in in_plans]
        batch = bool(up.batchable and sim._batching)
        #: quiescence cell: [converged, word0, ..., word(k-1)] — True
        #: plus cached words means the previous settle hit a tick fixed
        #: point, so a repeat-input cycle replays the words and skips
        #: the kernel call entirely
        QS = None
        if k:
            QS = b.bind([False] + [0] * k, "qs")
        w.emit(L, f"# unit {up.prefix}{unit.name}: fused RTL kernels")
        w.emit(L, f"if {U}.target_cycle < target_cycles:")
        Lu = L + 1
        # runtime guard: outbox state or non-uniform fire flags mean a
        # shape the kernels do not model (e.g. a checkpoint captured
        # mid-host_step) — delegate that pass to the interpreter
        guard = f"{U}.outbox"
        if k >= 2:
            n0 = fire_plans[0][0]
            guard += "".join(f" or {F}[{n0!r}] != {F}[{e[0]!r}]"
                             for e in fire_plans[1:])
        self._emit_fallback(Lu, uid, up, names, guard, use_dty=False,
                            qs=QS)
        w.emit(Lu, "else:")
        Lb = Lu + 1
        if batch:
            w.emit(Lb, "batched = 0")
            w.emit(Lb, "while True:")
            Lb += 1
        for j in range(k):
            w.emit(Lb, f"w{uid}_{j} = None")
        w.emit(Lb, "_tk = False")
        if k:
            wvars = ", ".join(f"w{uid}_{j}" for j in range(k))
            w.emit(Lb, f"if not {F}[{fire_plans[0][0]!r}]:")
            Lf = Lb + 1
            # fused-settle eligibility: every pending input word decodes
            # to the value its port already holds
            eq_terms: List[str] = []
            peeks: List[str] = []
            for i, (_ch, fields) in enumerate(in_plans):
                hv = f"_h{i}"
                peeks.append(f"{hv} = {in_qs[i]}[0]")
                for port, off, msk in fields:
                    if off:
                        eq_terms.append(
                            f"{ENV}[{port!r}] == ({hv} >> {off}) & {msk}")
                    else:
                        eq_terms.append(f"{ENV}[{port!r}] == {hv} & {msk}")
            if in_qs:
                w.emit(Lf, "if " + " and ".join(in_qs) + ":")
                for line in peeks:
                    w.emit(Lf + 1, line)
                w.emit(Lf + 1, "_tk = "
                       + (" and ".join(eq_terms) if eq_terms else "True"))
            else:
                w.emit(Lf, "_tk = True")
            w.emit(Lf, "if _tk:")
            w.emit(Lf + 1, f"if {QS}[0]:")
            for j in range(k):
                w.emit(Lf + 2, f"w{uid}_{j} = {QS}[{j + 1}]")
            w.emit(Lf + 1, "else:")
            w.emit(Lf + 2, f"{wvars}, _cv = {KC}({ENV}, {MEMS})")
            w.emit(Lf + 2, f"{QS}[0] = _cv")
            for j in range(k):
                w.emit(Lf + 2, f"{QS}[{j + 1}] = w{uid}_{j}")
            for entry in fire_plans:
                OC = b.bind(entry[1], "oc")
                # the fire's enqueue and the advance's dequeue cancel;
                # only the channel's token counter survives
                w.emit(Lf + 1, f"{OC}.total_enqueued += 1")
            w.emit(Lf, "else:")
            w.emit(Lf + 1, f"{wvars} = {KF}({ENV}, {MEMS})")
            w.emit(Lf + 1, f"{QS}[0] = False")
            for j, entry in enumerate(fire_plans):
                OQ = b.bind(entry[1].queue, "oq")
                OC = b.bind(entry[1], "oc")
                w.emit(Lf + 1, f"{OQ}.append(w{uid}_{j})")
                w.emit(Lf + 1, f"{OC}.total_enqueued += 1")
                w.emit(Lf + 1, f"{F}[{entry[0]!r}] = True")
            w.emit(Lf, "progress = True")
        # process fired tokens in fire (outbox) order
        for j, entry in enumerate(fire_plans):
            self._emit_out_op(Lb, uid, j, entry[0], up.out_ops[entry[0]])
        if batch:
            w.emit(Lb, "advanced = False")
        # the advance: fused (tick already committed by the cyc kernel)
        # or split (pokes + the adv kernel)
        w.emit(Lb, "if _tk:")
        La = Lb + 1
        self._emit_advance_timing(La, up)
        for iq in in_qs:
            w.emit(La, f"{iq}.popleft()")
        w.emit(La, f"{RTL}.cycle += 1")
        w.emit(La, f"{U}.target_cycle += 1")
        w.emit(La, "progress = True")
        if batch:
            w.emit(La, "advanced = True")
        conds = [f"{F}[{e[0]!r}]" for e in fire_plans] + list(in_qs)
        w.emit(Lb, "elif " + (" and ".join(conds) if conds else "True")
               + ":")
        self._emit_advance_timing(La, up)
        for i, (ch, fields) in enumerate(in_plans):
            w.emit(La, f"_w = {in_qs[i]}.popleft()")
            for line in _unpack_lines(ENV, "_w", fields):
                w.emit(La, line)
        w.emit(La, f"{KA}({ENV}, {MEMS})")
        if QS is not None:
            # a changed-input tick: cached words no longer match
            w.emit(La, f"{QS}[0] = False")
        w.emit(La, f"{RTL}.cycle += 1")
        for n in unit._fired:
            w.emit(La, f"{F}[{n!r}] = False")
        for ch in names["out_channels"]:
            OQ = b.bind(ch.queue, "oq")
            w.emit(La, f"if {OQ}:")
            w.emit(La + 1, f"{OQ}.popleft()")
        w.emit(La, f"{U}.target_cycle += 1")
        w.emit(La, "progress = True")
        if batch:
            w.emit(La, "advanced = True")
        if batch:
            limit = sim._BATCH_LIMIT
            w.emit(Lb, f"if not advanced or {U}.target_cycle >= "
                       f"target_cycles:")
            w.emit(Lb + 1, "break")
            w.emit(Lb, "batched += 1")
            w.emit(Lb, f"if batched >= {limit}:")
            w.emit(Lb + 1, "break")
            for level, line in self._feed_lines(up.source_ops):
                w.emit(Lb + level, line)

    def _emit_unit(self, L: int, uid: int, up) -> None:
        w, b, sim = self.w, self.b, self.sim
        unit = up.unit
        bindings = unit.step_bindings()
        names = {
            "U": b.bind(unit, "u"),
            "F": b.bind(bindings["fired"], "f"),
            "ENV": b.bind(bindings["env"], "e"),
            "MEMS": b.bind(bindings["mems"], "mm"),
            "C": b.bind(bindings["comb"], "c"),
            "T": b.bind(bindings["tick"], "t"),
            "RTL": b.bind(bindings["rtl"], "r"),
            "fire_plans": bindings["fire_plans"],
            "in_plans": bindings["in_plans"],
            "out_channels": bindings["out_channels"],
        }
        # kernel tier: dep-free (fast-mode) units on a compiled engine
        # get fused, cone-reduced RTL kernels instead of the generic
        # comb/tick pair
        if bindings["comb"] is not None and bindings["tick"] is not None \
                and all(not entry[2] for entry in bindings["fire_plans"]):
            kern = _unit_kernels(unit, bindings["fire_plans"])
            self.kernel_units.append(uid)
            self._emit_unit_kernel(L, uid, up, names, kern)
            return
        if self.eval_dedup:
            cell = [True]
            self.dirty_cells[uid] = cell
            b.bind(cell, "dc")
        U = names["U"]
        batch = bool(up.batchable and sim._batching)
        w.emit(L, f"if {U}.target_cycle < target_cycles:")
        Lu = L + 1
        # runtime guard: a non-empty outbox means state the generated
        # code does not model (e.g. a checkpoint captured between a fire
        # and its drain) — delegate this unit's pass to the interpreter
        self._emit_fallback(Lu, uid, up, names, f"{U}.outbox",
                            use_dty=self.eval_dedup)
        w.emit(Lu, "else:")
        Lb = Lu + 1
        if batch:
            w.emit(Lb, "batched = 0")
            w.emit(Lb, "while True:")
            Lb += 1
        fire_plans = names["fire_plans"]
        for j in range(len(fire_plans)):
            w.emit(Lb, f"w{uid}_{j} = None")
        for j, entry in enumerate(fire_plans):
            self._emit_fire(Lb, uid, j, entry, names)
        # process fired tokens in fire (outbox) order
        for j, entry in enumerate(fire_plans):
            name = entry[0]
            self._emit_out_op(Lb, uid, j, name, up.out_ops[name])
        if batch:
            w.emit(Lb, "advanced = False")
        self._emit_advance(Lb, uid, up, names, batch)
        if batch:
            limit = sim._BATCH_LIMIT
            w.emit(Lb, f"if not advanced or {U}.target_cycle >= "
                       f"target_cycles:")
            w.emit(Lb + 1, "break")
            w.emit(Lb, "batched += 1")
            w.emit(Lb, f"if batched >= {limit}:")
            w.emit(Lb + 1, "break")
            for level, line in self._feed_lines(up.source_ops):
                w.emit(Lb + level, line)

    # -- whole function ---------------------------------------------------

    def generate(self) -> Tuple[str, Dict[str, object]]:
        w, b = self.w, self.b
        # emit the body first so the binder discovers every name, then
        # assemble the header (bindings ride in as default args: every
        # pre-bound object is a LOAD_FAST in the hot loop)
        body = _Writer()
        self.w = body
        Lt = 3  # body statements sit inside ``_step``'s ``try:``
        for level, line in self._feed_lines(self.pplan.source_ops):
            body.emit(Lt + level, line)
        for uid, up in enumerate(self.pplan.unit_plans):
            self._emit_unit(Lt, uid, up)
        self.w = w
        w.emit(0, "def _make(_B):")
        w.emit(1, "def _step(")
        w.emit(2, "target_cycles,")
        for name in self.b.values:
            w.emit(2, f"{name}=_B[{name!r}],")
        w.emit(1, "):")
        w.emit(2, "progress = False")
        w.emit(2, f"busy = {self.PT}.busy_until")
        w.emit(2, f"lw = {self.SP}.link_wait_ns")
        w.emit(2, f"cs = {self.SP}.credit_stall_ns")
        w.emit(2, f"sd = {self.SP}.serdes_ns")
        w.emit(2, f"cp = {self.SP}.compute_ns")
        w.emit(2, f"sy = {self.SP}.sync_ns")
        w.emit(2, f"tt = {self.SIM}.total_tokens")
        for uid, cell in self.dirty_cells.items():
            w.emit(2, f"dty{uid} = {self.b.bind(cell, 'dc')}[0]")
        w.emit(2, "try:")
        if not body.lines:
            w.emit(3, "pass")
        self.w.lines.extend(body.lines)
        w.emit(2, "finally:")
        w.emit(3, f"{self.PT}.busy_until = busy")
        w.emit(3, f"{self.SP}.link_wait_ns = lw")
        w.emit(3, f"{self.SP}.credit_stall_ns = cs")
        w.emit(3, f"{self.SP}.serdes_ns = sd")
        w.emit(3, f"{self.SP}.compute_ns = cp")
        w.emit(3, f"{self.SP}.sync_ns = sy")
        w.emit(3, f"{self.SIM}.total_tokens = tt")
        for uid, cell in self.dirty_cells.items():
            w.emit(3, f"{self.b.bind(cell, 'dc')}[0] = dty{uid}")
        w.emit(2, "return progress")
        w.emit(1, "return _step")
        return "\n".join(w.lines) + "\n", dict(self.b.values)


def generate_partition_source(sim, pplan, eval_dedup: bool = True
                              ) -> Tuple[str, Dict[str, object]]:
    """Generate one partition's step-function source plus the binding
    table its default arguments are resolved from.  The caller must
    have checked :func:`partition_jit_reason` first."""
    return _PartitionCodegen(sim, pplan, eval_dedup=eval_dedup).generate()


def compile_step_functions(sim, only: Optional[Set[str]] = None,
                           eval_dedup: bool = True
                           ) -> Tuple[Dict[str, Callable],
                                      Dict[str, str]]:
    """Compile every eligible partition of ``sim``'s current schedule
    into a step function.

    Returns ``(step_fns, report)``: ``step_fns`` maps partition name to
    the compiled ``_step(target_cycles) -> progressed`` callable;
    ``report`` maps every partition to a human-readable compile verdict
    (also stored by the harness as ``last_jit_report``).  ``only``
    restricts compilation to the named partitions (a process worker
    compiles just its own).  ``eval_dedup=False`` disables the
    dirty-flag eval elision (used when a ``stop`` callback could mutate
    RTL state between passes behind the generated code's back)."""
    fns: Dict[str, Callable] = {}
    report: Dict[str, str] = {}
    for pplan in sim.ensure_schedule():
        name = pplan.part.name
        if only is not None and name not in only:
            report[name] = "skipped: not scheduled in this process"
            continue
        reason = partition_jit_reason(sim, pplan)
        if reason is not None:
            report[name] = f"interpreted: {reason}"
            continue
        cg = _PartitionCodegen(sim, pplan, eval_dedup=eval_dedup)
        src, bindings = cg.generate()
        namespace: Dict[str, object] = {}
        exec(compile(src, f"<stepjit:{name}>", "exec"), namespace)
        fns[name] = namespace["_make"](bindings)
        report[name] = (f"compiled: {len(pplan.unit_plans)} unit(s) "
                        f"({len(cg.kernel_units)} fused-kernel), "
                        f"{len(src.splitlines())} lines")
    return fns, report


def generate_sources(sim, eval_dedup: bool = True
                     ) -> Dict[str, Tuple[Optional[str], Optional[str]]]:
    """Per-partition ``(source, reject_reason)`` for inspection
    (``repro jit --dump``); exactly one of the pair is None."""
    out: Dict[str, Tuple[Optional[str], Optional[str]]] = {}
    for pplan in sim.ensure_schedule():
        reason = partition_jit_reason(sim, pplan)
        if reason is not None:
            out[pplan.part.name] = (None, reason)
        else:
            src, _ = generate_partition_source(
                sim, pplan, eval_dedup=eval_dedup)
            out[pplan.part.name] = (src, None)
    return out
