"""Typed attachment points for the partitioned harness.

Links and partitions accumulate optional behaviours — reliable link
layers, fault injectors, shared switch fabrics, tracers.  Instead of
ad-hoc ``Optional[object]`` fields and ``getattr`` probing at simulation
time, each carrier owns one hook container with typed slots; the
protocols below document exactly what each slot must provide.

Transport-derived hooks (``injector``, ``switch``) are *resolved once*
— at link construction and again whenever the transport is swapped
(:meth:`~repro.harness.partitioned.Link.refresh_transport_hooks`) — so
the per-token hot path does plain attribute reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Protocol

from ..observability.fmr import FMRSpans
from ..observability.tracer import NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from ..libdn.token import Token
    from .partitioned import Link, TransmitResult


class ReliabilityLayer(Protocol):
    """What a reliable link layer must provide (see
    :class:`~repro.reliability.link.ReliableLinkLayer`)."""

    stats: dict

    def transmit(self, link: "Link", depart_ns: float, width_bits: int,
                 token: "Token") -> "TransmitResult": ...

    def state_dict(self) -> dict: ...

    def load_state_dict(self, state: dict) -> None: ...


class TransportInjector(Protocol):
    """A transport-attached fault injector (see
    :class:`~repro.reliability.faults.FaultInjector`)."""

    def outcome(self, link_key: str, seq: int, attempt: int,
                depart_ns: float, token: "Token"): ...

    def raw_transmit(self, link: "Link", depart_ns: float,
                     width_bits: int,
                     token: "Token") -> "TransmitResult": ...


class SwitchFabric(Protocol):
    """A shared store-and-forward backplane (see
    :class:`~repro.platform.ethernet.SwitchFabric`)."""

    next_free: float
    tokens: int

    def traverse(self, depart_ns: float, width_bits: int) -> float: ...


@dataclass
class LinkHooks:
    """Every optional behaviour attached to one link.

    ``reliability`` is attached by
    :func:`~repro.reliability.link.harden_links`; ``injector`` and
    ``switch`` are resolved from the link's transport; ``tracer`` is
    installed by the owning simulation.
    """

    reliability: Optional[ReliabilityLayer] = None
    injector: Optional[TransportInjector] = None
    switch: Optional[SwitchFabric] = None
    tracer: Tracer = NULL_TRACER


@dataclass
class PartitionHooks:
    """Per-partition attachments: the trace sink and the FMR span
    accumulator the timing overlay charges every action to."""

    tracer: Tracer = NULL_TRACER
    spans: FMRSpans = field(default_factory=FMRSpans)
