"""Partitioned multi-FPGA co-simulation.

Functionally, this executes several LI-BDN hosts and moves tokens between
them exactly as FireAxe's FPGA shells and transport IP do.  On top of the
functional execution sits a *timing overlay* that prices every action the
way the paper's performance analysis does (Sec. VI-A):

* each partition has a host clock (bitstream frequency) and a
  ``busy_until`` cursor — host actions serialize on it,
* firing an output channel costs the transmit-side (de)serialization
  (``ceil(width/flit)`` host cycles), the wire time of the transport, and
  the receive-side deserialization at the destination's clock,
* links are occupied while a token is on the wire, so FAME-5 threads that
  share a link pay linearly growing serialization (the conservative note
  under Fig. 14),
* advancing a target cycle costs one host cycle per LI-BDN unit.

The achieved simulation rate is ``target_cycles / max(busy_until)``,
clamped by any transport rate cap (host-managed PCIe's 26.4 kHz).
Deadlocks (e.g. the aggregated-channel configuration of Fig. 2a) are
detected when a full pass over every unit makes no progress, and reported
with each stuck unit's channel state.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..errors import DeadlockError, SimulationError, TransportError
from ..libdn.codec import INCOMPATIBLE, TokenCodec, repack, repack_plan
from ..libdn.fame5 import FAME5Host
from ..libdn.token import Channel, Token
from ..libdn.wrapper import LIBDNHost
from ..observability import profile as _profile
from ..observability.postmortem import DeadlockPostmortem
from ..observability.tracer import NULL_TRACER, TraceEvent, Tracer
from ..obsplane.corr import current_corr_id
from ..obsplane.events import NULL_EVENT_LOG
from ..platform.transport import TransportModel
from ..telemetry.sampler import NULL_TELEMETRY, Telemetry
from .hooks import LinkHooks, PartitionHooks
from .metrics import SimulationResult

HostLike = Union[LIBDNHost, FAME5Host]


class TokenSource:
    """Produces tokens for an input channel with no inter-FPGA link
    (the software analogue of a FireSim bridge)."""

    def next_token(self, cycle: int) -> Token:
        raise NotImplementedError

    def next_word(self, cycle: int, codec: TokenCodec) -> int:
        """Packed variant used by the harness hot path; the default
        encodes :meth:`next_token` once — no extra dict copies."""
        return codec.encode(self.next_token(cycle))


class ConstantSource(TokenSource):
    """Always supplies the same token (encoded once per channel layout,
    not copied per cycle)."""

    def __init__(self, token: Token):
        self.token = dict(token)
        self._codec: Optional[TokenCodec] = None
        self._word = 0

    def next_token(self, cycle: int) -> Token:
        return dict(self.token)

    def next_word(self, cycle: int, codec: TokenCodec) -> int:
        if codec is not self._codec:
            self._word = codec.encode(self.token)
            self._codec = codec
        return self._word


class FunctionSource(TokenSource):
    """Supplies ``fn(cycle) -> Token``.  The callable builds one fresh
    dict per cycle by construction; the default :meth:`next_word`
    encodes it in place, so no caller-side copies are added."""

    def __init__(self, fn: Callable[[int], Token]):
        self.fn = fn

    def next_token(self, cycle: int) -> Token:
        return self.fn(cycle)


class Partition:
    """One FPGA in the co-simulation: an LI-BDN host plus a host clock."""

    def __init__(self, name: str, host: HostLike,
                 host_freq_mhz: float = 30.0,
                 advance_overhead_ns: float = 0.0):
        self.name = name
        self.host = host
        self.host_freq_mhz = host_freq_mhz
        #: extra per-target-cycle cost from token-exchange timing slack
        #: (grows with ring size in multi-FPGA topologies, Fig. 13)
        self.advance_overhead_ns = advance_overhead_ns
        self.busy_until = 0.0
        #: typed attachment points (tracer, FMR span accumulator)
        self.hooks = PartitionHooks()
        if isinstance(host, FAME5Host):
            self.units: List[Tuple[str, LIBDNHost]] = [
                (f"t{i}:", t) for i, t in enumerate(host.threads)
            ]
        else:
            self.units = [("", host)]

    @property
    def host_cycle_ns(self) -> float:
        return 1e3 / self.host_freq_mhz

    @property
    def spans(self):
        """FMR span accumulator (see
        :class:`~repro.observability.fmr.FMRSpans`)."""
        return self.hooks.spans

    @property
    def target_cycle(self) -> int:
        return min(unit.target_cycle for _, unit in self.units)

    def channel_names(self, direction: str) -> List[str]:
        names: List[str] = []
        for prefix, unit in self.units:
            chans = (unit.in_channels if direction == "in"
                     else unit.out_channels)
            names.extend(prefix + c for c in chans)
        return names


@dataclass
class TransmitResult:
    """Outcome of pushing one token onto a link.

    ``retry_delay_ns`` is the extra time the link was held busy by
    retransmissions (reliable links); it is added to the link occupancy
    so degraded links show up as a lower achieved simulation rate.
    """

    arrive_ns: float
    token: Token
    delivered: bool
    retries: int = 0
    retry_delay_ns: float = 0.0


@dataclass
class Link:
    """Unidirectional token connection between two partition channels.

    ``rename`` maps source-side port names to destination-side port names
    (used when a FAME-5 thread's channel ports are the bare module port
    names while the base side punched instance-prefixed names).

    Optional behaviours (a
    :class:`~repro.reliability.link.ReliableLinkLayer`, a transport
    fault injector, a shared switch fabric, a tracer) live in the typed
    ``hooks`` container; ``reliability`` is kept as a property for the
    attach sites.  When a reliable layer is set, every token goes
    through CRC/sequence/ack-retry framing and injected transport
    faults are recovered (at a timing cost) instead of corrupting or
    deadlocking the simulation.
    """

    src: Tuple[str, str]  # (partition name, output channel name)
    dst: Tuple[str, str]  # (partition name, input channel name)
    transport: TransportModel
    rename: Optional[Dict[str, str]] = None
    next_free: float = 0.0
    tokens: int = 0
    #: accumulated occupied time (occupancy windows + retransmissions)
    busy_ns: float = 0.0
    #: receiver-side in-flight depth histogram: depth -> deliveries
    depth_hist: Dict[int, int] = field(default_factory=dict)
    hooks: LinkHooks = field(default_factory=LinkHooks)

    def __post_init__(self) -> None:
        self.refresh_transport_hooks()

    def refresh_transport_hooks(self) -> None:
        """Re-resolve transport-derived hooks (injector, switch); call
        after swapping ``transport``."""
        self.hooks.injector = getattr(self.transport, "injector", None)
        self.hooks.switch = getattr(self.transport, "switch", None)

    @property
    def reliability(self):
        return self.hooks.reliability

    @reliability.setter
    def reliability(self, layer) -> None:
        self.hooks.reliability = layer

    @property
    def key(self) -> str:
        """Stable identity used to derive deterministic fault schedules."""
        return f"{self.src[0]}.{self.src[1]}->{self.dst[0]}.{self.dst[1]}"

    def map_token(self, token: Token) -> Token:
        if not self.rename:
            return token
        return {self.rename.get(k, k): v for k, v in token.items()}

    def transmit(self, depart_ns: float, width_bits: int,
                 token: Token) -> TransmitResult:
        """Move one token across the link starting at ``depart_ns``.

        Dispatches to the reliable link layer when one is attached, then
        to a fault injector when the transport carries one, and falls
        back to the ideal lossless wire otherwise.
        """
        hooks = self.hooks
        if hooks.reliability is not None:
            return hooks.reliability.transmit(
                self, depart_ns, width_bits, token)
        if hooks.injector is not None:
            return hooks.injector.raw_transmit(
                self, depart_ns, width_bits, token)
        return TransmitResult(
            depart_ns + self.transport.wire_ns(width_bits), token, True)


class _OutOp:
    """Precompiled per-output-channel op: every static fact the hot loop
    used to re-derive per token (resolved link, serdes/occupancy/wire
    times, dependency arrival keys, peer repack plan)."""

    __slots__ = ("full", "codec", "width", "dep_keys", "link", "switch",
                 "clean", "tx_ns", "rx_ns", "occupancy_ns", "wire_ns",
                 "repack", "dst_codec", "dst_part_name", "consume_q")

    def __init__(self, full: str, codec: TokenCodec,
                 dep_keys: Tuple[Tuple[str, str], ...]):
        self.full = full
        self.codec = codec
        self.width = codec.width
        self.dep_keys = dep_keys
        self.link: Optional[Link] = None
        self.switch = None
        self.clean = True
        self.tx_ns = 0.0
        self.rx_ns = 0.0
        self.occupancy_ns = 0.0
        self.wire_ns = 0.0
        self.repack = None
        self.dst_codec: Optional[TokenCodec] = None
        self.dst_part_name = ""
        #: the destination channel's consume-time deque, resolved at
        #: schedule-compile time so the credit path never builds a
        #: throwaway deque per drained token
        self.consume_q: Optional[Deque[float]] = None


class _UnitPlan:
    """Precompiled schedule slot for one LI-BDN unit."""

    __slots__ = ("part", "prefix", "unit", "out_ops", "in_keys",
                 "consume_keys", "host_cycle_ns", "batchable",
                 "source_ops", "ctr_stall", "ctr_bridge", "ctr_tx")

    def __init__(self, part: Partition, prefix: str, unit: LIBDNHost):
        self.part = part
        self.prefix = prefix
        self.unit = unit
        self.out_ops: Dict[str, _OutOp] = {}
        self.in_keys: Tuple[Tuple[str, str], ...] = ()
        self.consume_keys: Tuple[Tuple[str, str], ...] = ()
        self.host_cycle_ns = part.host_cycle_ns
        self.batchable = False
        #: (key, channel, source, unit) for this unit's source-fed inputs
        self.source_ops: List[tuple] = []
        #: telemetry counters, resolved lazily on first use so the hot
        #: loop skips the registry lookup and the instrument-creation
        #: order stays identical to the uncached code
        self.ctr_stall = None
        self.ctr_bridge = None
        self.ctr_tx = None


class _PartPlan:
    """Per-partition slice of the compiled wavefront schedule."""

    __slots__ = ("part", "unit_plans", "source_ops")

    def __init__(self, part: Partition):
        self.part = part
        self.unit_plans: List[_UnitPlan] = []
        #: flattened source ops in the legacy feeding order
        self.source_ops: List[tuple] = []


class PartitionedSimulation:
    """Co-simulates partitions over links with the timing overlay."""

    def __init__(self, partitions: Sequence[Partition],
                 links: Sequence[Link],
                 sources: Optional[Dict[Tuple[str, str], TokenSource]] = None,
                 seed_boundary: bool = False,
                 record_outputs: bool = False,
                 channel_capacity: int = 0,
                 tracer: Optional[Tracer] = None,
                 postmortem_events: Optional[int] = None,
                 telemetry: Optional[Telemetry] = None):
        #: trace sink threaded through the harness, units and links;
        #: the null default keeps every emit site a single flag check
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._trace = self.tracer.enabled
        #: metrics registry + cycle-keyed sampler; the null default
        #: keeps every instrument site a single flag check
        self.telemetry = telemetry if telemetry is not None \
            else NULL_TELEMETRY
        self._metrics_on = self.telemetry.enabled
        #: how many trailing events a deadlock postmortem keeps
        #: (``REPRO_POSTMORTEM_RING`` overrides the default of 64)
        if postmortem_events is None:
            postmortem_events = int(os.environ.get(
                "REPRO_POSTMORTEM_RING", "") or 64)
        self.postmortem_events = postmortem_events
        self.partitions: Dict[str, Partition] = {}
        for p in partitions:
            if p.name in self.partitions:
                raise SimulationError(f"duplicate partition {p.name!r}")
            self.partitions[p.name] = p
        self.links = list(links)
        self.sources = dict(sources or {})
        self.record_outputs = record_outputs
        self.output_log: Dict[Tuple[str, str], List[Token]] = {}
        self._link_by_src: Dict[Tuple[str, str], Link] = {}
        for link in self.links:
            if link.src in self._link_by_src:
                raise TransportError(
                    f"output channel {link.src} has two links")
            self._link_by_src[link.src] = link
        self._arrivals: Dict[Tuple[str, str], Deque[float]] = {}
        #: LI-BDNs are *bounded* dataflow networks.  ``channel_capacity``
        #: is the extra in-flight credit a sender has beyond the single
        #: token a latency-insensitive channel holds: 0 reproduces the
        #: hardware behaviour (Fig. 3a shows exactly one extra token — the
        #: fast-mode seed — living between the LI-BDNs); None removes the
        #: bound entirely (idealized infinite host buffering).
        self.channel_capacity = channel_capacity
        self._consume_times: Dict[Tuple[str, str], Deque[float]] = {}
        #: number of consume-time entries trimmed from the left of each
        #: queue; credit lookups index relative to this base so the queues
        #: stay O(in-flight tokens) over arbitrarily long runs.
        self._consume_base: Dict[Tuple[str, str], int] = {}
        self._dst_link_count: Dict[Tuple[str, str], int] = {}
        for link in self.links:
            self._dst_link_count[link.dst] = \
                self._dst_link_count.get(link.dst, 0) + 1
        #: when set (by the process backend's worker loop), remote token
        #: deliveries and consume-time records are routed through it
        #: instead of mutating peer-partition state directly
        self.router = None
        #: backend that executed the last ``run``
        #: ("inproc" / "process" / "process-shm")
        self.last_run_backend: Optional[str] = None
        #: request-scoped correlation id (set by the service executor);
        #: backends propagate it into every worker/agent they fork
        self.corr_id: str = ""
        #: lifecycle-event sink (worker spawns/exits, host events);
        #: the null default keeps every emit a single flag check
        self.events = NULL_EVENT_LOG
        #: per-partition corr echo of the last ``run`` — each worker
        #: reports the corr id it observed in its environment, the
        #: propagation proof the obsplane tests pin
        self.last_worker_corr: Dict[str, str] = {}
        #: static resolve table: (part, full channel name) -> Channel
        self._in_channel_by_key: Dict[Tuple[str, str], Channel] = {}
        self._out_channel_by_key: Dict[Tuple[str, str], Channel] = {}
        for part in self.partitions.values():
            for prefix, unit in part.units:
                for base, ch in unit.in_channels.items():
                    self._in_channel_by_key[(part.name, prefix + base)] = ch
                for base, ch in unit.out_channels.items():
                    self._out_channel_by_key[(part.name, prefix + base)] = ch
        #: precompiled wavefront schedule; rebuilt at every run() entry so
        #: post-construction hook swaps (harden_links, inject_faults) are
        #: honoured, then shared by the inproc loop and process workers
        self._schedule: Optional[List[_PartPlan]] = None
        self._plan_by_part: Dict[str, _PartPlan] = {}
        self._unit_plan_index: Dict[Tuple[str, str], _UnitPlan] = {}
        #: whether isolated fast-mode partitions may batch several target
        #: cycles per scheduling pass (set per run; off under telemetry
        #: sampling and stop callbacks, which observe pass granularity)
        self._batching = False
        #: compiled step plane (harness/stepjit.py): per-partition
        #: exec-compiled step functions, recompiled alongside the
        #: schedule; partitions missing from the table run interpreted
        self._step_fns: Dict[str, Callable[[int], bool]] = {}
        #: per-partition compile verdicts of the last step-plane build
        self.last_jit_report: Dict[str, str] = {}
        #: tri-state JIT override: None honours ``REPRO_STEPJIT``,
        #: True/False force it (the CLI's ``--no-jit`` sets False)
        self.stepjit: Optional[bool] = None
        #: cached (tokens_rx counter, rx_depth histogram) per receiving
        #: partition, resolved lazily in :meth:`apply_link_delivery`
        self._rx_instruments: Dict[str, tuple] = {}
        self._install_tracer()
        self._validate(seed_boundary)
        self.total_tokens = 0
        self.dropped_tokens = 0
        self._steps = 0

    def _install_tracer(self) -> None:
        """Thread the trace sink through every partition, unit and
        link; each unit's clock reads its partition's timing cursor."""
        for link in self.links:
            link.hooks.tracer = self.tracer
        for part in self.partitions.values():
            part.hooks.tracer = self.tracer
            for _, unit in part.units:
                unit.attach_tracer(self.tracer,
                                   clock=(lambda p=part: p.busy_until))

    # -- setup ---------------------------------------------------------------

    def _validate(self, seed_boundary: bool) -> None:
        link_dsts = {l.dst for l in self.links}
        for link in self.links:
            src_part, src_chan = link.src
            dst_part, dst_chan = link.dst
            if src_part not in self.partitions \
                    or dst_part not in self.partitions:
                raise TransportError(f"link references unknown partition: "
                                     f"{link.src} -> {link.dst}")
            if src_chan not in self.partitions[src_part] \
                    .channel_names("out"):
                raise TransportError(
                    f"{src_part} has no output channel {src_chan!r}")
            if dst_chan not in self.partitions[dst_part] \
                    .channel_names("in"):
                raise TransportError(
                    f"{dst_part} has no input channel {dst_chan!r}")
        for p in self.partitions.values():
            for chan in p.channel_names("in"):
                key = (p.name, chan)
                fed = key in link_dsts or key in self.sources
                if not fed:
                    raise TransportError(
                        f"input channel {key} has no link and no source"
                    )
        if seed_boundary:
            for link in self.links:
                # the all-zero token packs to the zero word
                self._deliver_word(link.dst, 0, 0.0)

    @staticmethod
    def _resolve(part: Partition, chan: str, direction: str):
        for prefix, unit in part.units:
            if chan.startswith(prefix):
                base = chan[len(prefix):]
                table = (unit.in_channels if direction == "in"
                         else unit.out_channels)
                if base in table:
                    return prefix, unit, base
        raise SimulationError(
            f"{part.name}: no {direction} channel {chan!r}")

    # -- token movement ----------------------------------------------------------

    def _deliver(self, dst: Tuple[str, str], token: Token,
                 arrival_ns: float) -> None:
        self._in_channel_by_key[dst].put(token)
        self._arrivals.setdefault(dst, deque()).append(arrival_ns)

    def _deliver_word(self, dst: Tuple[str, str], word: int,
                      arrival_ns: float) -> None:
        self._in_channel_by_key[dst].put_word(word)
        self._arrivals.setdefault(dst, deque()).append(arrival_ns)

    def _feed_sources(self, part: Partition) -> None:
        """Fill every empty source-fed input channel of ``part`` with the
        next token (packed straight into the channel queue)."""
        self.ensure_schedule()
        arrivals = self._arrivals
        for key, channel, source, unit in \
                self._plan_by_part[part.name].source_ops:
            if not channel.queue:
                channel.put_word(
                    source.next_word(unit.target_cycle, channel.codec))
                queue = arrivals.get(key)
                if queue is None:
                    queue = arrivals[key] = deque()
                queue.append(0.0)

    def apply_link_delivery(self, link: Link, word: int,
                            arrive_ns: float, rx_ns: float) -> None:
        """Receiver-side half of a link transfer: enqueue the packed
        token word and account the in-flight depth (also called by the
        process backend when applying a peer worker's effect frame)."""
        dst = link.dst
        self._in_channel_by_key[dst].put_word(word)
        queue = self._arrivals.get(dst)
        if queue is None:
            queue = self._arrivals[dst] = deque()
        queue.append(arrive_ns)
        depth = len(queue)
        link.depth_hist[depth] = link.depth_hist.get(depth, 0) + 1
        if self._metrics_on:
            inst = self._rx_instruments.get(dst[0])
            if inst is None:
                registry = self.telemetry.registry
                inst = self._rx_instruments[dst[0]] = (
                    registry.counter("tokens_rx", dst[0]),
                    registry.histogram("rx_depth", dst[0]))
            inst[0].inc()
            inst[1].observe(depth)
        if self._trace:
            self.tracer.emit(TraceEvent(
                "token_rx", ts_ns=arrive_ns,
                part=link.dst[0], scope=link.dst[1],
                args={"link": link.key, "rx_serdes_ns": rx_ns,
                      "depth": depth}))

    def _record_consume(self, key: Tuple[str, str], ns: float) -> None:
        """Record the consume time of a link-fed input channel (credit
        return); mirrored to remote feeder workers by the router."""
        self._consume_times.setdefault(key, deque()).append(ns)
        if self.router is not None:
            self.router.consumed(key, ns)

    def _head_arrival(self, key: Tuple[str, str]) -> float:
        queue = self._arrivals.get(key)
        return queue[0] if queue else 0.0

    def _pop_arrival(self, key: Tuple[str, str]) -> float:
        queue = self._arrivals.get(key)
        return queue.popleft() if queue else 0.0

    # -- schedule compilation ---------------------------------------------------

    def ensure_schedule(self) -> List[_PartPlan]:
        """Compile (or return) the precompiled wavefront schedule."""
        if self._schedule is None:
            self._compile_schedule()
        return self._schedule

    def invalidate_schedule(self) -> None:
        """Drop the compiled schedule and the step functions built
        against it (rebuilt on next use); call after swapping link
        transports or hooks outside ``run``, and after any wholesale
        state replacement (checkpoint restore) — the step functions
        close over live env/queue objects and must re-bind."""
        self._schedule = None
        self._step_fns = {}
        self._rx_instruments = {}

    def _compile_schedule(self) -> None:
        """Resolve the static (unit, channel, link, source) topology into
        flat per-unit op lists.  Everything derived here is a pure
        function of the topology and the currently attached transports
        and hooks, so the per-pass loop only touches preresolved
        objects and constants.  ``run`` recompiles at every entry, which
        keeps post-construction hook swaps (``harden_links``,
        ``inject_faults``) honoured at O(channels) cost."""
        schedule: List[_PartPlan] = []
        self._plan_by_part = {}
        self._unit_plan_index = {}
        # pre-create the arrival and consume-time deques so both the
        # interpreter and the compiled step functions mutate the same
        # objects (the step plane binds them at compile time); an empty
        # pre-created deque is indistinguishable from an absent key on
        # every read path
        arrivals = self._arrivals
        for key in self._in_channel_by_key:
            if key not in arrivals:
                arrivals[key] = deque()
        consume = self._consume_times
        credited = self.channel_capacity is not None
        linked_parts = set()
        for link in self.links:
            linked_parts.add(link.src[0])
            linked_parts.add(link.dst[0])
            if credited and link.dst not in consume:
                consume[link.dst] = deque()
        for part in self.partitions.values():
            pplan = _PartPlan(part)
            for prefix, unit in part.units:
                up = _UnitPlan(part, prefix, unit)
                for base, ch in unit.in_channels.items():
                    key = (part.name, prefix + base)
                    source = self.sources.get(key)
                    if source is not None:
                        up.source_ops.append((key, ch, source, unit))
                up.in_keys = tuple(
                    (part.name, prefix + base) for base in unit.in_channels)
                up.consume_keys = tuple(
                    key for key in up.in_keys
                    if key in self._dst_link_count)
                for base, ch in unit.out_channels.items():
                    full = prefix + base
                    op = _OutOp(full, ch.codec, tuple(
                        (part.name, prefix + d)
                        for d in sorted(ch.spec.deps)))
                    link = self._link_by_src.get((part.name, full))
                    if link is not None:
                        dst_part = self.partitions[link.dst[0]]
                        dst_ch = self._in_channel_by_key[link.dst]
                        hooks = link.hooks
                        op.link = link
                        op.switch = hooks.switch
                        op.clean = (hooks.reliability is None
                                    and hooks.injector is None)
                        op.tx_ns = (link.transport.serdes_cycles(op.width)
                                    * part.host_cycle_ns)
                        op.rx_ns = (link.transport.serdes_cycles(op.width)
                                    * dst_part.host_cycle_ns)
                        op.occupancy_ns = (
                            link.transport.per_token_overhead_ns
                            + op.width / link.transport.bandwidth_gbps)
                        op.wire_ns = link.transport.wire_ns(op.width)
                        op.repack = repack_plan(
                            ch.codec, dst_ch.codec, link.rename)
                        op.dst_codec = dst_ch.codec
                        op.dst_part_name = link.dst[0]
                        if credited:
                            op.consume_q = consume[link.dst]
                    up.out_ops[base] = op
                # isolated fast-mode partitions (all inputs source-fed,
                # all outputs bridge taps, single unit) advance with no
                # peer interaction at all: they may batch several target
                # cycles per scheduling pass without changing any
                # observable (credit exactness needs links; trace order
                # needs multiple units)
                up.batchable = (part.name not in linked_parts
                                and len(part.units) == 1)
                pplan.unit_plans.append(up)
                pplan.source_ops.extend(up.source_ops)
                self._unit_plan_index[(part.name, prefix)] = up
            schedule.append(pplan)
            self._plan_by_part[part.name] = pplan
        self._schedule = schedule

    def _compile_step_fns(self, only=None, eval_dedup: bool = True
                          ) -> None:
        """Build the compiled step plane for the current schedule (see
        :mod:`repro.harness.stepjit`).  Must run after ``_batching`` is
        set — the generator specializes the batch loop on it.  Eligible
        partitions land in ``_step_fns``; the rest stay interpreted,
        with the verdicts recorded in ``last_jit_report``."""
        from .stepjit import compile_step_functions, stepjit_enabled
        self._step_fns = {}
        if not stepjit_enabled(self):
            self.last_jit_report = {
                name: "disabled (REPRO_STEPJIT / stepjit override)"
                for name in self.partitions}
            return
        self._step_fns, self.last_jit_report = compile_step_functions(
            self, only=only, eval_dedup=eval_dedup)

    # -- main loop ----------------------------------------------------------------

    #: isolated-partition batching cap per scheduling pass: bounds how
    #: long a worker can go without reporting progress to the supervisor
    _BATCH_LIMIT = 4096

    def _process_unit(self, part: Partition, prefix: str,
                      unit: LIBDNHost) -> bool:
        """Compatibility entry: one unbatched pass over one unit."""
        self.ensure_schedule()
        return self._run_unit(self._unit_plan_index[(part.name, prefix)],
                              None)

    def _run_unit(self, up: _UnitPlan,
                  target_cycles: Optional[int]) -> bool:
        part = up.part
        unit = up.unit
        progress = False
        spans = part.hooks.spans
        arrivals = self._arrivals
        batched = 0
        while True:
            if unit.try_fire_outputs():
                progress = True
            for base, word in unit.drain_outbox_words():
                op = up.out_ops[base]
                dep_arrival = 0.0
                for key in op.dep_keys:
                    queue = arrivals.get(key)
                    if queue and queue[0] > dep_arrival:
                        dep_arrival = queue[0]
                # time the host idles before it can even look at this
                # token: waiting for dependent inputs is link-wait,
                # waiting for channel credit beyond that is a credit
                # stall
                dep_start = max(part.busy_until, dep_arrival)
                spans.link_wait_ns += dep_start - part.busy_until
                start = dep_start
                link = op.link
                if link is not None and self.channel_capacity is not None:
                    consumed = op.consume_q
                    credit_index = link.tokens - self.channel_capacity
                    if credit_index >= 0:
                        rel = credit_index - self._consume_base.get(
                            link.dst, 0)
                        if 0 <= rel < len(consumed):
                            start = max(start, consumed[rel])
                        elif rel >= len(consumed) and consumed:
                            start = max(start, consumed[-1])
                        # future credit indices for this link only grow,
                        # so once it is the sole feeder of dst every
                        # entry below ``rel`` is dead — trim, keeping the
                        # newest entry for the receiver-behind fallback
                        # above.
                        if self._dst_link_count.get(link.dst) == 1 \
                                and rel > 0 and consumed:
                            drop = min(rel, len(consumed) - 1)
                            for _ in range(drop):
                                consumed.popleft()
                            self._consume_base[link.dst] = \
                                self._consume_base.get(link.dst, 0) + drop
                credit_wait = start - dep_start
                spans.credit_stall_ns += credit_wait
                if credit_wait and self._metrics_on:
                    ctr = up.ctr_stall
                    if ctr is None:
                        ctr = up.ctr_stall = \
                            self.telemetry.registry.counter(
                                "credit_stalls", part.name)
                    ctr.inc()
                if credit_wait and self._trace:
                    self.tracer.emit(TraceEvent(
                        "credit_stall", ts_ns=dep_start,
                        dur_ns=credit_wait,
                        part=part.name, scope=op.full,
                        args={"link": link.key, "tokens": link.tokens}))
                if link is None:
                    # external observation channel (a FireSim bridge
                    # tap): drained by wide DMA batches, effectively free
                    part.busy_until = start
                    if self._metrics_on:
                        ctr = up.ctr_bridge
                        if ctr is None:
                            ctr = up.ctr_bridge = \
                                self.telemetry.registry.counter(
                                    "bridge_outputs", part.name)
                        ctr.inc()
                    if self.record_outputs:
                        self.output_log.setdefault(
                            (part.name, op.full), []).append(
                                op.codec.decode(word))
                    if self._trace:
                        self.tracer.emit(TraceEvent(
                            "bridge_output", ts_ns=start, part=part.name,
                            scope=op.full,
                            args={"cycle": unit.target_cycle}))
                    continue
                tx_ns = op.tx_ns
                spans.serdes_ns += tx_ns
                end = start + tx_ns
                part.busy_until = end
                depart = end if end > link.next_free else link.next_free
                occupancy = op.occupancy_ns
                link.next_free = depart + occupancy
                if op.switch is not None:
                    # switched Ethernet: contend on the shared backplane
                    depart = op.switch.traverse(depart, op.width)
                if op.clean:
                    # ideal lossless wire: the transmit outcome is fully
                    # determined by the precompiled constants, and the
                    # token crosses as a packed word (repacked to the
                    # peer layout by bit moves when the layouts differ)
                    arrive_ns = depart + op.wire_ns
                    delivered = True
                    retries = 0
                    retry_delay = 0.0
                    if op.repack is INCOMPATIBLE:
                        mapped_word = op.dst_codec.encode(
                            link.map_token(op.codec.decode(word)))
                    else:
                        mapped_word = repack(word, op.repack)
                else:
                    # reliability layer / fault injector attached: these
                    # hooks inspect and may corrupt per-port values, so
                    # the token crosses the hook path as a dict
                    res = link.transmit(depart, op.width,
                                        op.codec.decode(word))
                    arrive_ns = res.arrive_ns
                    delivered = res.delivered
                    retries = res.retries
                    retry_delay = res.retry_delay_ns
                    if delivered:
                        mapped_word = op.dst_codec.encode(
                            link.map_token(res.token))
                # retransmissions hold the link busy beyond the clean
                # occupancy window
                link.next_free += retry_delay
                link.busy_ns += occupancy + retry_delay
                if self._trace:
                    self.tracer.emit(TraceEvent(
                        "token_tx", ts_ns=start, dur_ns=tx_ns,
                        part=part.name, scope=op.full,
                        args={"link": link.key, "width": op.width,
                              "serdes_ns": tx_ns,
                              "wire_ns": op.wire_ns,
                              "occupancy_ns": occupancy,
                              "queue_wait_ns": depart - end,
                              "retries": retries,
                              "retry_delay_ns": retry_delay}))
                if delivered:
                    # receive-side deserialization is priced at the
                    # destination's host clock; remote destinations go
                    # through the router (process backend)
                    router = self.router
                    if router is not None \
                            and not router.is_local(op.dst_part_name):
                        router.deliver_remote(
                            link, mapped_word,
                            arrive_ns + op.rx_ns, op.rx_ns)
                    else:
                        self.apply_link_delivery(
                            link, mapped_word,
                            arrive_ns + op.rx_ns, op.rx_ns)
                else:
                    self.dropped_tokens += 1
                link.tokens += 1
                self.total_tokens += 1
                if self._metrics_on:
                    ctr = up.ctr_tx
                    if ctr is None:
                        ctr = up.ctr_tx = \
                            self.telemetry.registry.counter(
                                "tokens_tx", part.name)
                    ctr.inc()
            advanced = False
            if unit.can_advance():
                host_cycle_ns = up.host_cycle_ns
                input_ready = 0.0
                for key in up.in_keys:
                    queue = arrivals.get(key)
                    if queue:
                        arrival = queue.popleft()
                        if arrival > input_ready:
                            input_ready = arrival
                start = part.busy_until \
                    if part.busy_until > input_ready else input_ready
                spans.link_wait_ns += start - part.busy_until
                if self.channel_capacity is not None:
                    # only link-fed channels are read back by the credit
                    # logic; recording source-fed ones would grow forever
                    for key in up.consume_keys:
                        self._record_consume(key, start + host_cycle_ns)
                spans.compute_ns += host_cycle_ns
                spans.sync_ns += part.advance_overhead_ns
                if self._trace:
                    self.tracer.emit(TraceEvent(
                        "target_cycle", ts_ns=start,
                        dur_ns=(host_cycle_ns
                                + part.advance_overhead_ns),
                        part=part.name, scope=up.prefix + unit.name,
                        args={"cycle": unit.target_cycle,
                              "input_wait_ns": start - part.busy_until}))
                part.busy_until = (start + host_cycle_ns
                                   + part.advance_overhead_ns)
                unit.advance()
                progress = True
                advanced = True
            # isolated fast-mode partitions may run several target
            # cycles per scheduling pass: no links touch them, so no
            # observable (timing, spans, output log, arrivals) depends
            # on the pass boundary
            if (not advanced or target_cycles is None
                    or not up.batchable or not self._batching
                    or unit.target_cycle >= target_cycles):
                break
            batched += 1
            if batched >= self._BATCH_LIMIT:
                break
            for key, channel, source, src_unit in up.source_ops:
                if not channel.queue:
                    channel.put_word(source.next_word(
                        src_unit.target_cycle, channel.codec))
                    queue = arrivals.get(key)
                    if queue is None:
                        queue = arrivals[key] = deque()
                    queue.append(0.0)
        return progress

    def run(self, target_cycles: int,
            stop: Optional[Callable[["PartitionedSimulation"], bool]] = None,
            max_passes: int = 50_000_000,
            backend: str = "auto") -> SimulationResult:
        """Run until every partition reaches ``target_cycles`` (or ``stop``
        returns True); raises :class:`DeadlockError` if progress halts.

        ``backend`` selects the execution engine: ``"auto"`` honours the
        ``REPRO_BACKEND`` environment variable (``process`` runs each
        partition in its own OS worker process when the simulation is
        distributable and no ``stop`` callback is given — results are
        bit-identical either way; ``process-shm`` additionally moves the
        steady-state token frames over shared-memory rings instead of
        pickled pipes; ``process-socket`` moves them over stream
        sockets, the transport the farm layer stretches across hosts);
        ``"process"`` / ``"process-shm"`` / ``"process-socket"`` demand
        the distributed backend (raising
        :class:`~repro.errors.BackendUnavailableError` /
        :class:`~repro.errors.UnsupportedTopologyError` when it cannot
        run); ``"inproc"`` forces the cooperative single-process loop.
        Any other name raises
        :class:`~repro.errors.UnknownBackendError`.
        """
        from ..parallel import normalize_backend
        resolved = normalize_backend(backend)
        if resolved in ("process", "process-shm", "process-socket"):
            if stop is not None:
                raise SimulationError(
                    "the process backend does not support stop "
                    "callbacks (they would need to observe every "
                    "worker's state every pass); use backend='inproc'")
            from ..parallel import ProcessBackend
            transport = {"process": "pipe", "process-shm": "shm",
                         "process-socket": "socket"}[resolved]
            return ProcessBackend(transport=transport).run(
                self, target_cycles, max_passes=max_passes)
        if resolved == "auto" and stop is None:
            from ..parallel import auto_backend
            chosen = auto_backend(self)
            if chosen is not None:
                return chosen.run(self, target_cycles,
                                  max_passes=max_passes)
        self.last_run_backend = "inproc"
        # no subprocesses: every partition "observed" this process's
        # corr id, keeping the echo uniform across backends
        corr = self.corr_id or current_corr_id()
        self.last_worker_corr = {name: corr for name in self.partitions}
        if self._metrics_on:
            self.telemetry.target_cycles = max(
                self.telemetry.target_cycles or 0, target_cycles)
        # recompile the flat op schedule: post-construction transport or
        # hook swaps (harden_links, inject_faults) land here
        self.invalidate_schedule()
        schedule = self.ensure_schedule()
        self._batching = stop is None and not self._metrics_on
        # build the compiled step plane against the fresh schedule; a
        # stop callback may poke RTL state between passes, so the
        # redundant-eval elision is disabled under one
        self._compile_step_fns(eval_dedup=stop is None)
        passes = 0
        while self.frontier_cycle() < target_cycles:
            if stop is not None and stop(self):
                break
            progress = False
            for pplan in schedule:
                step = self._step_fns.get(pplan.part.name)
                if step is not None:
                    progress |= step(target_cycles)
                else:
                    self._feed_sources(pplan.part)
                    for up in pplan.unit_plans:
                        if up.unit.target_cycle >= target_cycles:
                            continue
                        progress |= self._run_unit(up, target_cycles)
                if self._metrics_on:
                    # the sampler sees each partition right after its
                    # slot in the pass — the same point the process
                    # backend's worker samples at, which is what makes
                    # the series bit-identical across backends
                    self.telemetry.on_pass(self, pplan.part)
            passes += 1
            if not progress:
                detail = " ;; ".join(
                    unit.stuck_detail()
                    for p in self.partitions.values()
                    for _, unit in p.units)
                if self._trace:
                    self.tracer.emit(TraceEvent(
                        "deadlock",
                        ts_ns=max(p.busy_until
                                  for p in self.partitions.values()),
                        args={"host_passes": passes,
                              "frontier": self.frontier_cycle()}))
                raise DeadlockError(detail, host_cycle=passes,
                                    postmortem=self._postmortem(passes))
            if passes > max_passes:
                raise SimulationError("co-simulation pass budget exhausted")
        if self._metrics_on and self.frontier_cycle() >= (
                self.telemetry.target_cycles or 0):
            # only the final segment (supervisor runs pin the overall
            # target first) writes the terminal live-status record
            self.telemetry.finish(self)
        return self.result()

    def _postmortem(self, passes: int) -> DeadlockPostmortem:
        """Snapshot every unit's channel state plus the trailing event
        ring for a deadlock report."""
        channels: Dict[str, Dict[str, dict]] = {}
        for name, part in self.partitions.items():
            channels[name] = {
                (prefix + unit.name if prefix else unit.name):
                    unit.channel_state()
                for prefix, unit in part.units
            }
        return DeadlockPostmortem(
            host_passes=passes,
            frontier_cycle=self.frontier_cycle(),
            channels=channels,
            events=self.tracer.recent(self.postmortem_events))

    def frontier_cycle(self) -> int:
        return min(p.target_cycle for p in self.partitions.values())

    def result(self) -> SimulationResult:
        cycles = self.frontier_cycle()
        wall_ns = max(p.busy_until for p in self.partitions.values())
        wall_ns = max(wall_ns, 1e-9)
        rate = cycles / wall_ns * 1e9 if cycles else 0.0
        for link in self.links:
            rate = link.transport.apply_rate_cap(rate)
        # FMR (FPGA-cycle-to-Model-cycle Ratio): how many host cycles
        # each partition spent per simulated target cycle.  Monolithic
        # FireSim sits near 1; partitioned simulations pay the token
        # exchange (FireSim/FireAxe's key efficiency metric).
        fmr = {}
        fmr_breakdown = {}
        for name, p in self.partitions.items():
            if p.target_cycle:
                host_cycles = p.busy_until / p.host_cycle_ns
                fmr[name] = host_cycles / p.target_cycle
                # the spans partition busy_until exactly, so the
                # components sum to the partition's FMR
                fmr_breakdown[name] = p.hooks.spans.breakdown(
                    p.host_cycle_ns, p.target_cycle)
        detail: Dict[str, object] = {"fmr": fmr,
                                     "fmr_breakdown": fmr_breakdown}
        if self.links:
            detail["links"] = {
                link.key: {
                    "tokens": link.tokens,
                    "utilization": min(1.0, link.busy_ns / wall_ns),
                    "in_flight_hist": dict(link.depth_hist),
                }
                for link in self.links
            }
        if self.dropped_tokens:
            detail["dropped_tokens"] = self.dropped_tokens
        link_stats = {
            link.key: dict(link.reliability.stats)
            for link in self.links if link.reliability is not None
        }
        if link_stats:
            detail["reliability"] = link_stats
        if self._metrics_on:
            detail["telemetry"] = self.telemetry.detail()
        result = SimulationResult(
            target_cycles=cycles,
            wall_ns=wall_ns,
            rate_hz=rate,
            tokens_transferred=self.total_tokens,
            per_partition_cycles={
                name: p.target_cycle
                for name, p in self.partitions.items()
            },
            detail=detail,
        )
        _profile.record_result(result)
        return result
