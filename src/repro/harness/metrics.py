"""Result records and cycle-count comparison helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class SimulationResult:
    """Outcome of a harness run.

    Attributes:
        target_cycles: target-design cycles simulated.
        wall_ns: simulated host wall-clock time (from the timing overlay).
        rate_hz: achieved target frequency (``target_cycles / wall_ns``),
            after any transport rate cap.
        tokens_transferred: total tokens that crossed inter-FPGA links.
        per_partition_cycles: final target cycle per partition.
        detail: free-form extras (per-channel counts, utilization, ...).
    """

    target_cycles: int
    wall_ns: float
    rate_hz: float
    tokens_transferred: int = 0
    per_partition_cycles: Dict[str, int] = field(default_factory=dict)
    detail: Dict[str, object] = field(default_factory=dict)

    @property
    def rate_mhz(self) -> float:
        return self.rate_hz / 1e6

    @property
    def rate_khz(self) -> float:
        return self.rate_hz / 1e3


def cycle_count_error_pct(reference_cycles: int, measured_cycles: int
                          ) -> float:
    """Absolute percentage error against a reference cycle count — the
    metric of the paper's Table II validation."""
    if reference_cycles == 0:
        return 0.0 if measured_cycles == 0 else float("inf")
    return abs(measured_cycles - reference_cycles) \
        / reference_cycles * 100.0
