"""Closed-form throughput model for partitioned simulations.

This is the "expected simulation performance" feedback FireRipper prints
at compile time (Sec. III), and the model behind the paper's four
performance knobs (Sec. VI-A):

* interconnect — latency/bandwidth of the transport,
* partitioning mode — exact crosses the link twice per target cycle,
  fast once,
* module selection — sets the boundary width, which scales the
  (de)serialization work,
* bitstream frequency — shrinks every host-cycle-denominated cost.

FAME-5 threading (Sec. VI-B) overlaps the N per-thread host cycles and
serialization with the link latency, so the per-target-cycle cost is the
*max* of the communication latency and the threaded compute, not the sum —
that is the amortization Fig. 14 shows.  Rings of more than two FPGAs add
a small per-hop synchronization penalty (Fig. 13's "minor timing
issues").
"""

from __future__ import annotations

from ..platform.transport import TransportModel

#: per-extra-FPGA synchronization jitter in a ring, ns per target cycle
RING_SYNC_JITTER_NS = 260.0


def analytic_rate_hz(mode: str, width_bits: int,
                     transport: TransportModel,
                     host_freq_mhz: float,
                     threads: int = 1,
                     num_fpgas: int = 2) -> float:
    """Predicted target simulation frequency in Hz.

    Args:
        mode: ``"exact"`` or ``"fast"``.
        width_bits: boundary interface width in one direction.
        transport: inter-FPGA transport model.
        host_freq_mhz: bitstream frequency of the slower partition.
        threads: FAME-5 thread count on the threaded partition (1 = none).
        num_fpgas: FPGAs in the (ring) topology.
    """
    host_ns = 1e3 / host_freq_mhz
    crossings = 2 if mode == "exact" else 1
    serdes_ns = 2 * transport.serdes_cycles(width_bits) * host_ns
    one_crossing = transport.wire_ns(width_bits) + serdes_ns
    advance_ns = host_ns
    # fire-FSM / fireFSM pipeline overhead: a few host cycles per target
    # cycle for arming output FSMs and committing the cycle (calibrated
    # against the token-level co-simulation)
    pipeline_ns = 3 * host_ns

    if threads <= 1:
        per_cycle = crossings * one_crossing + advance_ns + pipeline_ns
    else:
        # N threads: tokens pipeline into the link; compute and per-thread
        # serialization overlap with the flight latency of earlier tokens.
        per_thread_ns = (advance_ns
                         + 2 * transport.serdes_cycles(width_bits) * host_ns
                         + (width_bits / transport.bandwidth_gbps
                            + transport.per_token_overhead_ns))
        pipelined = threads * per_thread_ns
        latency_bound = crossings * one_crossing + advance_ns
        per_cycle = max(latency_bound, pipelined)

    per_cycle += max(0, num_fpgas - 2) * RING_SYNC_JITTER_NS
    rate = 1e9 / per_cycle
    return transport.apply_rate_cap(rate)
