"""Software RTL simulator rate model — the paper's baseline comparator.

Sec. V-A reports the 24-core BOOM SoC running at 1.26 kHz in a commercial
software RTL simulator, against 0.58 MHz in FireAxe (a 460x speedup).
Software RTL simulation throughput is dominated by the number of circuit
elements evaluated per cycle, so we model it as a calibrated constant
budget of simulated gate-equivalents per second divided by the design
size, with a floor for fixed per-cycle kernel overhead.
"""

from __future__ import annotations

#: gate-equivalent evaluations per second for a commercial simulator on a
#: fast host, calibrated so the paper's 24-core SoC (~390M gate
#: equivalents, dominated by 24 BOOM tiles) lands at 1.26 kHz.
_COMMERCIAL_GEPS = 5.1e11
#: per-cycle kernel overhead floor (scheduling, event wheel), seconds
_CYCLE_OVERHEAD_S = 2.0e-8


def software_rtl_sim_rate_hz(design_gate_equivalents: float,
                             parallel_speedup: float = 1.0) -> float:
    """Predicted software RTL simulation rate for a design of the given
    size (in gate equivalents; LUT estimates x ~25 are a fair proxy).

    Args:
        design_gate_equivalents: total combinational+sequential elements.
        parallel_speedup: multiplier for multi-threaded simulation
            (RepCut-style partitioned software simulation would raise it).
    """
    seconds_per_cycle = (design_gate_equivalents / _COMMERCIAL_GEPS
                         + _CYCLE_OVERHEAD_S)
    return parallel_speedup / seconds_per_cycle


def luts_to_gate_equivalents(luts: float) -> float:
    """Rough conversion from FPGA LUT count to ASIC gate equivalents."""
    return luts * 25.0
