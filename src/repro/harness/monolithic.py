"""Monolithic FireSim-style simulation of an unpartitioned target.

This is the ground truth for the Table II validation: the same target
compiled without FireRipper, running as a single LI-BDN on one FPGA.
Because the whole design sits in one host, the LI-BDN fires every cycle
and the FPGA-cycle-to-model-cycle ratio is ~1, so the achieved rate is
simply the host clock frequency; cycle counts come from stepping the RTL
engine directly.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

from ..errors import SimulationError
from ..firrtl.circuit import Circuit
from ..rtl.engine import Simulator
from .metrics import SimulationResult

#: per-port input driver: constant value or fn(cycle) -> value
InputDriver = Union[int, Callable[[int], int]]


class MonolithicSimulation:
    """Single-FPGA simulation harness around one RTL simulator."""

    def __init__(self, circuit: Circuit, host_freq_mhz: float = 30.0,
                 drivers: Optional[Dict[str, InputDriver]] = None):
        self.sim = Simulator(circuit)
        self.host_freq_mhz = host_freq_mhz
        self.drivers: Dict[str, InputDriver] = dict(drivers or {})
        unknown = set(self.drivers) - set(self.sim.elab.inputs)
        if unknown:
            raise SimulationError(
                f"drivers for unknown input ports: {sorted(unknown)}"
            )

    def _inputs_at(self, cycle: int) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for port, drv in self.drivers.items():
            out[port] = drv(cycle) if callable(drv) else drv
        return out

    def run(self, cycles: int) -> SimulationResult:
        """Run a fixed number of target cycles."""
        for _ in range(cycles):
            self.sim.step(self._inputs_at(self.sim.cycle))
        self.sim.eval()
        return self._result()

    def run_until(self, signal: str, value: int = 1,
                  max_cycles: int = 5_000_000) -> SimulationResult:
        """Run until an output/internal signal reaches ``value``."""
        for _ in range(max_cycles):
            for port, val in self._inputs_at(self.sim.cycle).items():
                self.sim.poke(port, val)
            self.sim.eval()
            if self.sim.peek(signal) == value:
                return self._result()
            self.sim.tick()
        raise SimulationError(
            f"{signal} never reached {value} within {max_cycles} cycles"
        )

    def _result(self) -> SimulationResult:
        cycles = self.sim.cycle
        host_cycle_ns = 1e3 / self.host_freq_mhz
        wall_ns = max(cycles * host_cycle_ns, host_cycle_ns)
        return SimulationResult(
            target_cycles=cycles,
            wall_ns=wall_ns,
            rate_hz=self.host_freq_mhz * 1e6,
            per_partition_cycles={"monolithic": cycles},
        )
