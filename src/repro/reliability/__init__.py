"""Reliability subsystem for long partitioned runs.

FireAxe's flagship result — an RTL bug caught three billion cycles into
a 5-FPGA run — lives or dies by the plumbing around the simulation:
links hiccup, hosts stall, and lost progress on a multi-day run is lost
wall-clock time.  This package makes partitioned runs survivable and
lets degraded links be studied as an experiment axis:

* :mod:`~repro.reliability.checkpoint` — capture/restore a whole
  :class:`~repro.harness.partitioned.PartitionedSimulation` (LI-BDN and
  FAME-5 channel state, timing cursors, credit queues) to a versioned
  on-disk format,
* :mod:`~repro.reliability.faults` — seeded deterministic injection of
  token drops, bit corruption, latency spikes, and link flaps beneath
  any transport model,
* :mod:`~repro.reliability.link` — a CRC + sequence-number + ack/retry
  link layer whose recoveries are priced through the timing overlay, so
  faults degrade the achieved rate instead of the results,
* :mod:`~repro.reliability.supervisor` — periodic checkpoints, progress
  heartbeats, and rollback/resume around a full run.
"""

from .checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    capture_state,
    load_checkpoint,
    restore_checkpoint,
    restore_state,
    save_checkpoint,
)
from .faults import (
    AttemptOutcome,
    FaultInjector,
    FaultSpec,
    FaultyTransport,
    corrupt_token,
    token_crc,
)
from .link import (
    ReliableLinkConfig,
    ReliableLinkLayer,
    harden_links,
    inject_faults,
)
from .supervisor import (
    InjectedCrash,
    RunSupervisor,
    SupervisorEvent,
    SupervisorReport,
)

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "capture_state",
    "restore_state",
    "save_checkpoint",
    "load_checkpoint",
    "restore_checkpoint",
    "FaultSpec",
    "FaultInjector",
    "FaultyTransport",
    "AttemptOutcome",
    "token_crc",
    "corrupt_token",
    "ReliableLinkConfig",
    "ReliableLinkLayer",
    "harden_links",
    "inject_faults",
    "RunSupervisor",
    "SupervisorReport",
    "SupervisorEvent",
    "InjectedCrash",
]
