"""Reliable link layer: CRC + sequence numbers + ack/retry.

Sits between a :class:`~repro.harness.partitioned.Link` and its (possibly
fault-injected) transport.  Every token is framed with a CRC-32 and a
per-link sequence number; the receiver acks clean in-order frames and
stays silent on a CRC mismatch, so the sender retries after a timeout
with exponential backoff.  A link flap stalls the sender until the
window closes.

All of this is *priced through the existing timing overlay* rather than
simulated with real traffic: a recovered fault costs the timeout/backoff
wait (pushing the token's arrival time and the link's busy window out),
so injected faults show up as a reduced achieved simulation rate while
the delivered token stream stays bit-identical to a fault-free run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import LinkGiveUpError, TransportError
from ..harness.partitioned import Link, PartitionedSimulation, TransmitResult
from ..libdn.token import Token
from ..observability.tracer import TraceEvent
from .faults import (
    AttemptOutcome,
    FaultInjector,
    FaultSpec,
    FaultyTransport,
    corrupt_token,
    token_crc,
)


@dataclass(frozen=True)
class ReliableLinkConfig:
    """Retry policy and framing overhead of the reliable layer.

    ``ack_overhead_ns`` is the per-token cost of the CRC/seq framing and
    the returning ack flit — paid even on a fault-free link (reliability
    is not free).  Retries wait ``timeout_ns * backoff**attempt``,
    clamped to ``max_backoff_ns``.
    """

    ack_overhead_ns: float = 40.0
    timeout_ns: float = 10_000.0
    backoff: float = 2.0
    max_backoff_ns: float = 1_000_000.0
    max_retries: int = 24


def _fresh_stats() -> dict:
    return {
        "delivered": 0,
        "retries": 0,
        "drops_recovered": 0,
        "crc_rejects": 0,
        "flap_stalls": 0,
        "spikes": 0,
        "retry_delay_ns": 0.0,
    }


class ReliableLinkLayer:
    """Per-link ARQ state machine (one instance per hardened link)."""

    def __init__(self, config: Optional[ReliableLinkConfig] = None):
        self.config = config or ReliableLinkConfig()
        self.tx_seq = 0
        self.rx_seq = 0
        self.stats = _fresh_stats()

    # -- transmission ---------------------------------------------------------

    def _retry_wait_ns(self, attempt: int) -> float:
        cfg = self.config
        return min(cfg.timeout_ns * cfg.backoff ** attempt,
                   cfg.max_backoff_ns)

    def transmit(self, link: Link, depart_ns: float, width_bits: int,
                 token: Token) -> TransmitResult:
        """Deliver ``token`` across ``link`` no matter what the injector
        throws at it (up to ``max_retries``), accumulating the retry
        delay into the returned timing."""
        cfg = self.config
        injector: Optional[FaultInjector] = link.hooks.injector
        tracer = link.hooks.tracer
        crc = token_crc(token)
        seq = self.tx_seq
        attempt = 0
        now = depart_ns
        while True:
            out = (injector.outcome(link.key, seq, attempt, now, token)
                   if injector is not None else AttemptOutcome())
            if out.clean:
                if out.extra_latency_ns:
                    self.stats["spikes"] += 1
                wire = (link.transport.wire_ns(width_bits)
                        + out.extra_latency_ns + cfg.ack_overhead_ns)
                if seq != self.rx_seq:
                    raise TransportError(
                        f"link {link.key}: sequence error (sent "
                        f"seq={seq}, receiver expected {self.rx_seq})")
                self.tx_seq += 1
                self.rx_seq += 1
                self.stats["delivered"] += 1
                retry_delay = now - depart_ns
                self.stats["retry_delay_ns"] += retry_delay
                return TransmitResult(now + wire, token, True,
                                      retries=attempt,
                                      retry_delay_ns=retry_delay)
            if out.link_down_until is not None:
                self.stats["flap_stalls"] += 1
                reason = "flap"
                # the sender keeps timing out until the link is back up
                next_try = max(out.link_down_until,
                               now + self._retry_wait_ns(attempt))
            elif out.corrupt_port is not None:
                received = corrupt_token(token, out.corrupt_port,
                                         out.corrupt_bit)
                if token_crc(received) == crc:  # pragma: no cover
                    # a CRC-32 collision on a single-bit flip cannot
                    # happen, but fail loudly rather than deliver garbage
                    raise TransportError(
                        f"link {link.key}: undetected corruption")
                self.stats["crc_rejects"] += 1
                reason = "crc_reject"
                next_try = now + self._retry_wait_ns(attempt)
            else:  # dropped
                self.stats["drops_recovered"] += 1
                reason = "drop"
                next_try = now + self._retry_wait_ns(attempt)
            self.stats["retries"] += 1
            if tracer.enabled:
                tracer.emit(TraceEvent(
                    "link_retry", ts_ns=now, dur_ns=next_try - now,
                    part=link.src[0], scope=link.key,
                    args={"reason": reason, "seq": seq,
                          "attempt": attempt}))
            attempt += 1
            if attempt > cfg.max_retries:
                raise LinkGiveUpError(link.key, seq, attempt)
            now = next_try

    # -- checkpointing ---------------------------------------------------------

    def state_dict(self) -> dict:
        return {"tx_seq": self.tx_seq, "rx_seq": self.rx_seq,
                "stats": dict(self.stats)}

    def load_state_dict(self, state: dict) -> None:
        self.tx_seq = state["tx_seq"]
        self.rx_seq = state["rx_seq"]
        self.stats = {**_fresh_stats(), **state["stats"]}


def inject_faults(sim: PartitionedSimulation, spec: FaultSpec) -> None:
    """Wrap every link's transport with a fault injector (no recovery:
    drops deadlock the run, corruption silently wrongs it)."""
    injector = FaultInjector(spec)
    for link in sim.links:
        link.transport = FaultyTransport(link.transport, injector)
        link.refresh_transport_hooks()


def harden_links(sim: PartitionedSimulation,
                 spec: Optional[FaultSpec] = None,
                 config: Optional[ReliableLinkConfig] = None) -> None:
    """Attach a reliable link layer to every link of ``sim``; when a
    :class:`FaultSpec` is given, also inject faults beneath it so the
    layer has something to recover from."""
    if spec is not None:
        inject_faults(sim, spec)
    for link in sim.links:
        link.reliability = ReliableLinkLayer(config)
