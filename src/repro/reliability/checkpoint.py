"""Checkpoint/restore of a whole :class:`PartitionedSimulation`.

A checkpoint captures everything that determines the rest of a
partitioned run:

* per-unit LI-BDN state — simulator signals/memories/cycle, channel
  queues, fire-FSM flags, outbox — for plain and FAME-5 hosts alike,
* the timing overlay — per-partition ``busy_until`` cursors and FMR
  span accumulators, per-link ``next_free``/``tokens``/occupancy
  stats, shared switch backplane cursors,
* the harness queues — pending arrival times, credit consume times (and
  their trim bases), token counters, the recorded output log,
* reliable-link layer state (sequence numbers, stats) when attached,
* telemetry state (sampled metric series, instrument values, sampler
  cursors) when the simulation carries an enabled telemetry session —
  so a restored run's series continues exactly where the checkpointed
  one left off.  The key is optional: checkpoints from telemetry-off
  runs (and older captures) restore unchanged.

The on-disk format is versioned JSON; :func:`restore_state` validates a
topology fingerprint so a checkpoint can only land on a structurally
identical simulation (same partitions, units, channels, links) — the
intended flow is to rebuild the simulation from the same design in a
fresh process, then restore.  Token sources are *not* captured: they are
pure functions of the target cycle and are rebuilt with the simulation.

Fault schedules replay identically after restore because they are
derived from ``(seed, link, seq, attempt)``, not from RNG state.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple, Union

from ..errors import CheckpointError
from ..firrtl.fingerprint import elaboration_fingerprint
from ..harness.partitioned import Link, PartitionedSimulation

CHECKPOINT_FORMAT = "fireaxe-repro-partitioned-checkpoint"
CHECKPOINT_VERSION = 1

_Key = Tuple[str, str]


def _encode_keyed(table: Dict[_Key, object]) -> List[list]:
    return [[list(key), value] for key, value in sorted(table.items())]


def _decode_keyed(entries: List[list]) -> Dict[_Key, object]:
    return {(key[0], key[1]): value for key, value in entries}


def _topology(sim: PartitionedSimulation) -> dict:
    return {
        "partitions": {
            name: {
                "units": [prefix for prefix, _ in p.units],
                # elaborated-RTL digest per unit: a checkpoint may only
                # land on the same flattened design, not merely one
                # with matching channel names
                "rtl": [elaboration_fingerprint(unit.sim.elab)
                        for _, unit in p.units],
                "in_channels": sorted(p.channel_names("in")),
                "out_channels": sorted(p.channel_names("out")),
            }
            for name, p in sim.partitions.items()
        },
        "links": [[list(l.src), list(l.dst)] for l in sim.links],
        "channel_capacity": sim.channel_capacity,
    }


def _switches(sim: PartitionedSimulation) -> List[object]:
    """Unique shared switch fabrics, in first-seen link order."""
    seen: List[object] = []
    for link in sim.links:
        switch = link.hooks.switch
        if switch is not None and all(switch is not s for s in seen):
            seen.append(switch)
    return seen


def capture_state(sim: PartitionedSimulation) -> dict:
    """Snapshot ``sim`` into a JSON-serializable dict."""
    state = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "topology": _topology(sim),
        "partitions": {
            name: {"busy_until": p.busy_until,
                   "spans": p.hooks.spans.as_dict(),
                   "host": p.host.state_dict()}
            for name, p in sim.partitions.items()
        },
        "links": [
            {
                "next_free": link.next_free,
                "tokens": link.tokens,
                "busy_ns": link.busy_ns,
                "depth_hist": {str(depth): count
                               for depth, count
                               in link.depth_hist.items()},
                "reliability": (link.reliability.state_dict()
                                if link.reliability is not None else None),
            }
            for link in sim.links
        ],
        "switches": [
            {"next_free": s.next_free, "tokens": s.tokens}
            for s in _switches(sim)
        ],
        "arrivals": _encode_keyed(
            {k: list(q) for k, q in sim._arrivals.items()}),
        "consume_times": _encode_keyed(
            {k: list(q) for k, q in sim._consume_times.items()}),
        "consume_base": _encode_keyed(dict(sim._consume_base)),
        "output_log": _encode_keyed(
            {k: [dict(t) for t in tokens]
             for k, tokens in sim.output_log.items()}),
        "total_tokens": sim.total_tokens,
        "dropped_tokens": sim.dropped_tokens,
    }
    if sim.telemetry.enabled:
        state["telemetry"] = sim.telemetry.state_dict()
    return state


def restore_state(sim: PartitionedSimulation, state: dict) -> None:
    """Load a :func:`capture_state` snapshot onto a freshly built,
    structurally identical simulation."""
    from collections import deque

    if state.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"not a partitioned-simulation checkpoint "
            f"(format={state.get('format')!r})")
    if state.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version {state.get('version')} unsupported "
            f"(this build reads version {CHECKPOINT_VERSION})")
    topology = _topology(sim)
    if state["topology"] != topology:
        raise CheckpointError(
            "checkpoint topology does not match this simulation "
            "(different partitions, channels, links, or capacity)")

    for name, part_state in state["partitions"].items():
        part = sim.partitions[name]
        part.busy_until = part_state["busy_until"]
        part.host.load_state_dict(part_state["host"])
        spans = part.hooks.spans
        spans.reset()
        # older captures predate span accounting; a missing entry
        # restores as all-zero spans (breakdown then undercounts)
        for component, ns in part_state.get("spans", {}).items():
            setattr(spans, f"{component}_ns", ns)
    for link, link_state in zip(sim.links, state["links"]):
        link.next_free = link_state["next_free"]
        link.tokens = link_state["tokens"]
        link.busy_ns = link_state.get("busy_ns", 0.0)
        link.depth_hist = {
            int(depth): count
            for depth, count in link_state.get("depth_hist", {}).items()
        }
        saved_layer = link_state["reliability"]
        if saved_layer is not None:
            if link.reliability is None:
                raise CheckpointError(
                    f"checkpoint expects a reliable link layer on "
                    f"{link.key}; harden the links before restoring")
            link.reliability.load_state_dict(saved_layer)
    switches = _switches(sim)
    saved_switches = state["switches"]
    if len(switches) != len(saved_switches):
        raise CheckpointError(
            f"checkpoint has {len(saved_switches)} switch fabrics, "
            f"simulation has {len(switches)}")
    for switch, sw_state in zip(switches, saved_switches):
        switch.next_free = sw_state["next_free"]
        switch.tokens = sw_state["tokens"]

    sim._arrivals = {
        key: deque(values)
        for key, values in _decode_keyed(state["arrivals"]).items()
    }
    sim._consume_times = {
        key: deque(values)
        for key, values in _decode_keyed(state["consume_times"]).items()
    }
    sim._consume_base = dict(_decode_keyed(state["consume_base"]))
    sim.output_log = {
        key: [dict(t) for t in tokens]
        for key, tokens in _decode_keyed(state["output_log"]).items()
    }
    sim.total_tokens = state["total_tokens"]
    sim.dropped_tokens = state["dropped_tokens"]
    telemetry_state = state.get("telemetry")
    if telemetry_state is not None and sim.telemetry.enabled:
        sim.telemetry.load_state_dict(telemetry_state)
    # the arrival/consume dicts above were replaced wholesale; any
    # compiled schedule (and its step functions) binds the old deque
    # objects, so force a rebuild before the next pass
    sim.invalidate_schedule()


def save_checkpoint(sim: PartitionedSimulation,
                    path: Union[str, Path]) -> Path:
    """Capture ``sim`` and write it to ``path`` as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(capture_state(sim)))
    tmp.replace(path)  # atomic: a crash mid-write never truncates
    return path


def load_checkpoint(path: Union[str, Path]) -> dict:
    """Read and structurally validate a checkpoint file."""
    try:
        state = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}")
    if not isinstance(state, dict) \
            or state.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"{path} is not a partitioned-simulation checkpoint")
    return state


def restore_checkpoint(sim: PartitionedSimulation,
                       path: Union[str, Path]) -> None:
    """Load ``path`` and restore it onto ``sim``."""
    restore_state(sim, load_checkpoint(path))
