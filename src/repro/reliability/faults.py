"""Deterministic transport fault injection.

A :class:`FaultInjector` wraps any :class:`~repro.platform.transport.
TransportModel` (via :class:`FaultyTransport`) and decides, per
transmission attempt, whether the token is dropped, bit-corrupted,
latency-spiked, or blocked by a link flap.  The schedule is derived
purely from ``(seed, link, seq, attempt)`` — no hidden RNG state — so:

* two runs with the same seed see byte-identical fault sequences,
* a checkpointed run replays exactly after restore (nothing to save),
* every link sees an independent stream (the link identity is mixed in).

Link flaps are windows in *link time*: an attempt departing inside
``[start_ns, start_ns + duration_ns)`` fails outright and the earliest
useful retry is when the window closes — matching a cable pull or an
Aurora channel-down event rather than a per-token coin flip.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Optional, Tuple

from ..harness.partitioned import Link, TransmitResult
from ..libdn.token import Token
from ..platform.transport import TransportModel


def token_crc(token: Token) -> int:
    """CRC-32 of a canonical serialization of one token's payload."""
    payload = ";".join(
        f"{name}={token[name]}" for name in sorted(token)).encode()
    return zlib.crc32(payload)


def corrupt_token(token: Token, port: str, bit: int) -> Token:
    """Return a copy of ``token`` with one bit of ``port`` flipped."""
    return {**token, port: token[port] ^ (1 << bit)}


@dataclass(frozen=True)
class FaultSpec:
    """Seeded description of a degraded link.

    Rates are per transmission attempt and are disjoint (at most one of
    drop/corrupt/spike per attempt); ``flaps`` are ``(start_ns,
    duration_ns)`` outage windows that apply to every link.
    """

    seed: int = 0
    drop_rate: float = 0.0
    corrupt_rate: float = 0.0
    spike_rate: float = 0.0
    spike_ns: float = 20_000.0
    flaps: Tuple[Tuple[float, float], ...] = ()

    @property
    def fault_rate(self) -> float:
        return self.drop_rate + self.corrupt_rate + self.spike_rate


@dataclass(frozen=True)
class AttemptOutcome:
    """What the channel did to one transmission attempt."""

    dropped: bool = False
    corrupt_port: Optional[str] = None
    corrupt_bit: int = 0
    extra_latency_ns: float = 0.0
    link_down_until: Optional[float] = None

    @property
    def clean(self) -> bool:
        return (not self.dropped and self.corrupt_port is None
                and self.link_down_until is None)


class FaultInjector:
    """Maps ``(link, seq, attempt, time)`` to an :class:`AttemptOutcome`."""

    def __init__(self, spec: FaultSpec):
        self.spec = spec

    def outcome(self, link_key: str, seq: int, attempt: int,
                depart_ns: float, token: Token) -> AttemptOutcome:
        spec = self.spec
        for start, duration in spec.flaps:
            if start <= depart_ns < start + duration:
                return AttemptOutcome(link_down_until=start + duration)
        # seeding Random with a string hashes it through sha512, which is
        # stable across processes (unlike hash() of a tuple)
        rng = random.Random(f"{spec.seed}/{link_key}/{seq}/{attempt}")
        roll = rng.random()
        if roll < spec.drop_rate:
            return AttemptOutcome(dropped=True)
        if roll < spec.drop_rate + spec.corrupt_rate:
            ports = sorted(token)
            return AttemptOutcome(
                corrupt_port=ports[rng.randrange(len(ports))],
                corrupt_bit=0)
        if roll < spec.fault_rate:
            return AttemptOutcome(
                extra_latency_ns=spec.spike_ns * (0.5 + rng.random()))
        return AttemptOutcome()

    def raw_transmit(self, link: Link, depart_ns: float,
                     width_bits: int, token: Token) -> TransmitResult:
        """Single-shot transmission with no recovery: drops and flaps
        lose the token (the LI-BDN downstream will starve and the run
        deadlocks), corruption delivers a wrong payload.  This is the
        failure mode the reliable link layer exists to prevent."""
        out = self.outcome(link.key, link.tokens, 0, depart_ns, token)
        if out.dropped or out.link_down_until is not None:
            return TransmitResult(depart_ns, token, False)
        if out.corrupt_port is not None:
            token = corrupt_token(token, out.corrupt_port,
                                  out.corrupt_bit)
        arrive = (depart_ns + link.transport.wire_ns(width_bits)
                  + out.extra_latency_ns)
        return TransmitResult(arrive, token, True)


class FaultyTransport:
    """A :class:`TransportModel` stand-in that injects faults.

    Delegates every timing attribute to the wrapped model (including
    ``switch`` for switched Ethernet), so the clean-path cost model is
    untouched; the harness and reliable link layer discover the injector
    through the ``injector`` attribute.
    """

    def __init__(self, base: TransportModel, injector: FaultInjector):
        self.base = base
        self.injector = injector
        self.name = f"faulty({base.name})"

    def __getattr__(self, attr: str):
        return getattr(self.base, attr)

    def __repr__(self) -> str:
        return f"FaultyTransport({self.base!r}, {self.injector.spec!r})"
