"""Run supervisor: periodic checkpoints, heartbeats, rollback/resume.

The software analogue of FireSim's run-farm liveness layer, scaled to
this repo's in-process co-simulation.  The supervisor owns a *factory*
for the simulation (so it can rebuild one from scratch after a crash —
the same thing a fresh process restoring an on-disk checkpoint does),
runs it in checkpoint-sized segments, and between segments:

* records a per-partition progress heartbeat,
* captures a checkpoint (in memory, and on disk when a directory is
  given),
* checks that every partition advanced since the last heartbeat.

A stall (deadlock, heartbeat failure) or a crash (injected via
``crash_at_cycles``, or any simulation error) rolls the run back to the
last checkpoint on a freshly built simulation and resumes.  Injected
crashes are one-shot, so the replay sails past the crash point; a
deterministic stall (e.g. an unrecovered token drop) recurs on every
replay and the supervisor gives up after ``max_rollbacks``, re-raising
the underlying error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..errors import SimulationError
from ..harness.metrics import SimulationResult
from ..harness.partitioned import PartitionedSimulation
from ..observability.tracer import NULL_TRACER, TraceEvent, Tracer
from .checkpoint import capture_state, restore_state, save_checkpoint


class InjectedCrash(SimulationError):
    """A scripted host crash (testing/experiment construct)."""

    def __init__(self, cycle: int):
        self.cycle = cycle
        super().__init__(f"injected crash at target cycle {cycle}")


@dataclass
class SupervisorEvent:
    """One entry of the supervisor's run journal."""

    kind: str  # checkpoint | crash | stall | rollback | complete
    cycle: int
    note: str = ""


@dataclass
class SupervisorReport:
    """Everything a supervised run produced."""

    result: SimulationResult
    events: List[SupervisorEvent] = field(default_factory=list)
    checkpoints: int = 0
    rollbacks: int = 0
    heartbeats: List[Dict[str, int]] = field(default_factory=list)
    #: final recorded external-output tokens (when the simulation was
    #: built with ``record_outputs``) — lets callers check bit-identity
    #: against an unsupervised or fault-free run
    output_log: Dict[tuple, list] = field(default_factory=dict)

    def event_kinds(self) -> List[str]:
        return [e.kind for e in self.events]


class RunSupervisor:
    """Drives a partitioned run to completion across failures.

    Args:
        build: zero-argument factory producing a fresh, structurally
            identical simulation (e.g. ``lambda:
            design.build_simulation(...)`` plus any link hardening).
        checkpoint_every: target cycles between checkpoints.
        checkpoint_dir: when given, every checkpoint is also written to
            ``<dir>/checkpoint-<cycle>.json`` (latest wins at restore).
        max_rollbacks: rollbacks tolerated before the supervisor
            re-raises the underlying failure.
        crash_at_cycles: target cycles at which to inject a one-shot
            host crash (each fires once, then is consumed).
        tracer: optional
            :class:`~repro.observability.tracer.Tracer` receiving the
            supervisor's heartbeat/checkpoint/rollback events (this is
            separate from any tracer the built simulation carries).
        backend: optional :class:`~repro.parallel.ProcessBackend`; when
            given, every segment runs distributed across per-partition
            worker processes.  A worker that dies or hangs surfaces as
            a :class:`~repro.errors.WorkerError` (a
            ``SimulationError``), so the ordinary rollback/resume path
            applies — the supervisor rebuilds, restores the last
            checkpoint, and retries, up to ``max_rollbacks``.
    """

    def __init__(self, build: Callable[[], PartitionedSimulation],
                 checkpoint_every: int = 100,
                 checkpoint_dir: Optional[Union[str, Path]] = None,
                 max_rollbacks: int = 3,
                 crash_at_cycles: Sequence[int] = (),
                 tracer: Optional[Tracer] = None,
                 backend=None):
        if checkpoint_every <= 0:
            raise SimulationError("checkpoint_every must be positive")
        self.build = build
        self.backend = backend
        self.checkpoint_every = checkpoint_every
        self.checkpoint_dir = (Path(checkpoint_dir)
                               if checkpoint_dir is not None else None)
        self.max_rollbacks = max_rollbacks
        self._pending_crashes = sorted(crash_at_cycles)
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def _emit(self, kind: str, sim: PartitionedSimulation,
              **args) -> None:
        if self.tracer.enabled:
            self.tracer.emit(TraceEvent(
                kind,
                ts_ns=max(p.busy_until for p in sim.partitions.values()),
                scope="supervisor",
                args={"cycle": sim.frontier_cycle(), **args}))

    # -- internals ------------------------------------------------------------

    def _heartbeat(self, sim: PartitionedSimulation) -> Dict[str, int]:
        return {name: p.target_cycle
                for name, p in sim.partitions.items()}

    def _take_checkpoint(self, sim: PartitionedSimulation,
                         report: SupervisorReport) -> dict:
        state = capture_state(sim)
        cycle = sim.frontier_cycle()
        if self.checkpoint_dir is not None:
            save_checkpoint(sim,
                            self.checkpoint_dir / f"checkpoint-{cycle}.json")
        report.checkpoints += 1
        report.events.append(SupervisorEvent("checkpoint", cycle))
        report.heartbeats.append(self._heartbeat(sim))
        self._emit("checkpoint", sim)
        self._emit("heartbeat", sim, progress=self._heartbeat(sim))
        return state

    @staticmethod
    def _pin_target(sim: PartitionedSimulation,
                    target_cycles: int) -> None:
        """Pin the *overall* run target on a (re)built simulation's
        telemetry so segment-sized ``run`` calls neither finalize the
        live status early nor lower the pinned target."""
        if sim.telemetry.enabled:
            sim.telemetry.target_cycles = max(
                sim.telemetry.target_cycles or 0, target_cycles)

    def _segment_stop(self, crash_cycle: Optional[int]):
        if crash_cycle is None:
            return None

        def stop(sim: PartitionedSimulation) -> bool:
            if sim.frontier_cycle() >= crash_cycle:
                raise InjectedCrash(crash_cycle)
            return False
        return stop

    # -- main entry -----------------------------------------------------------

    def run(self, target_cycles: int) -> SupervisorReport:
        """Simulate ``target_cycles``, surviving crashes and stalls."""
        sim = self.build()
        self._pin_target(sim, target_cycles)
        report = SupervisorReport(result=sim.result())
        last_state = self._take_checkpoint(sim, report)
        rollbacks = 0
        while sim.frontier_cycle() < target_cycles:
            frontier = sim.frontier_cycle()
            seg_end = min(
                (frontier // self.checkpoint_every + 1)
                * self.checkpoint_every,
                target_cycles)
            crash_cycle = None
            if self._pending_crashes \
                    and self._pending_crashes[0] <= seg_end:
                crash_cycle = self._pending_crashes[0]
            try:
                if self.backend is not None:
                    self.backend.run(sim, seg_end,
                                     crash_cycle=crash_cycle)
                else:
                    sim.run(seg_end,
                            stop=self._segment_stop(crash_cycle))
                if sim.frontier_cycle() <= frontier:
                    raise SimulationError(
                        f"no partition advanced past cycle {frontier} "
                        f"in a whole segment")
            except SimulationError as exc:
                kind = ("crash" if isinstance(exc, InjectedCrash)
                        else "stall")
                report.events.append(SupervisorEvent(
                    kind, sim.frontier_cycle(), str(exc)))
                self._emit(kind, sim, error=str(exc))
                if isinstance(exc, InjectedCrash):
                    # the crash happened; don't re-fire it on replay
                    self._pending_crashes.pop(0)
                rollbacks += 1
                report.rollbacks += 1
                if rollbacks > self.max_rollbacks:
                    raise
                sim = self.build()
                self._pin_target(sim, target_cycles)
                restore_state(sim, last_state)
                report.events.append(SupervisorEvent(
                    "rollback", sim.frontier_cycle(),
                    f"restored checkpoint after {kind}"))
                self._emit("rollback", sim, after=kind)
                continue
            last_state = self._take_checkpoint(sim, report)
            rollbacks = 0  # only *consecutive* failures count as fatal
        report.result = sim.result()
        report.output_log = sim.output_log
        report.events.append(SupervisorEvent(
            "complete", sim.frontier_cycle()))
        return report
