"""JSON-over-HTTP endpoint for the simulation service.

Hand-rolled on ``asyncio.start_server`` (no ``http.server``): requests
are one-shot HTTP/1.1 exchanges with JSON bodies and
``Connection: close`` semantics — the simplest protocol a curl, the
bundled :class:`~repro.service.client.ServiceClient`, or a load
balancer health check can speak.  Routes::

    GET  /healthz                 liveness + job counts
    GET  /metrics                 Prometheus text exposition
    GET  /stats                   counters, cache, admission snapshot
    POST /jobs                    submit {tenant, config, priority, name}
    GET  /jobs[?tenant=T]         list job records
    GET  /jobs/<id>               one job record
    GET  /jobs/<id>/wait?timeout=S   long-poll until terminal
    POST /jobs/<id>/cancel        request cancellation

Typed library errors map onto status codes (429 quota, 404 unknown
job, 400 bad request); the error payload carries the exception type
and its structured attributes so the client can re-raise the same
typed error on its side.

:class:`ServiceThread` runs a service + endpoint on a background
thread with a blocking facade — what ``repro serve`` builds in the
foreground, and what tests and the service benchmark drive.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..errors import (
    JobNotFoundError,
    QuotaExceededError,
    ReproError,
    ServiceError,
)
from ..obsplane import get_logger, log_record
from .scheduler import ServiceConfig, SimulationService

MAX_BODY_BYTES = 8 * 1024 * 1024

_STATUS_TEXT = {200: "OK", 400: "Bad Request", 404: "Not Found",
                405: "Method Not Allowed", 408: "Request Timeout",
                429: "Too Many Requests", 500: "Internal Server Error"}


def _error_payload(exc: Exception) -> Tuple[int, dict]:
    payload = {"error": str(exc), "type": type(exc).__name__}
    if isinstance(exc, QuotaExceededError):
        payload.update(tenant=exc.tenant, kind=exc.kind,
                       limit=exc.limit, current=exc.current)
        return 429, payload
    if isinstance(exc, JobNotFoundError):
        payload.update(job_id=exc.job_id)
        return 404, payload
    if isinstance(exc, ReproError):
        return 400, payload
    return 500, payload


class ServiceServer:
    """The asyncio endpoint in front of one
    :class:`SimulationService`."""

    def __init__(self, service: SimulationService,
                 host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._log = get_logger("repro.service.http")

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- one exchange -----------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, query, body = \
                    await self._read_request(reader)
            except (asyncio.IncompleteReadError, ValueError,
                    ServiceError) as exc:
                await self._respond(writer, 400,
                                    {"error": f"bad request: {exc}",
                                     "type": "ServiceError"})
                return
            try:
                status, payload = await self._route(
                    method, path, query, body)
            except Exception as exc:  # noqa: BLE001 — mapped to status
                status, payload = _error_payload(exc)
            await self._respond(writer, status, payload)
            log_record(self._log, "http", method=method, path=path,
                       status=status)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        header_blob = await reader.readuntil(b"\r\n\r\n")
        lines = header_blob.decode("latin-1").split("\r\n")
        method, target, _version = lines[0].split(" ", 2)
        headers = {}
        for line in lines[1:]:
            if ":" in line:
                key, value = line.split(":", 1)
                headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise ServiceError(f"body too large ({length} bytes)")
        raw = await reader.readexactly(length) if length else b""
        body = None
        if raw:
            try:
                body = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise ServiceError(f"invalid JSON body: {exc}")
        split = urlsplit(target)
        query = {key: values[-1]
                 for key, values in parse_qs(split.query).items()}
        return method.upper(), split.path, query, body

    async def _respond(self, writer: asyncio.StreamWriter,
                       status: int, payload) -> None:
        if isinstance(payload, str):  # /metrics: text exposition
            body = payload.encode()
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload).encode()
            content_type = "application/json"
        head = (f"HTTP/1.1 {status} "
                f"{_STATUS_TEXT.get(status, 'Unknown')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # -- routing ----------------------------------------------------------

    async def _route(self, method: str, path: str, query: dict,
                     body) -> Tuple[int, dict]:
        service = self.service
        parts = [p for p in path.split("/") if p]
        if parts == ["healthz"] and method == "GET":
            stats = service.stats()
            return 200, {"ok": True, "jobs": stats["jobs"]}
        if parts == ["metrics"] and method == "GET":
            return 200, service.metrics_text()
        if parts == ["stats"] and method == "GET":
            return 200, service.stats()
        if parts == ["jobs"]:
            if method == "POST":
                body = body or {}
                if "config" not in body:
                    raise ServiceError("submit wants a 'config' key")
                job = await service.submit(
                    body["config"],
                    tenant=str(body.get("tenant", "default")),
                    priority=int(body.get("priority", 0)),
                    name=str(body.get("name", "")))
                return 200, job.record()
            if method == "GET":
                return 200, {"jobs": service.list_jobs(
                    tenant=query.get("tenant"))}
            return 405, {"error": f"{method} /jobs unsupported",
                         "type": "ServiceError"}
        if len(parts) == 2 and parts[0] == "jobs" and method == "GET":
            return 200, service.get(parts[1]).record()
        if len(parts) == 3 and parts[0] == "jobs":
            job_id, action = parts[1], parts[2]
            if action == "cancel" and method == "POST":
                job = await service.cancel(job_id)
                return 200, job.record()
            if action == "wait" and method == "GET":
                timeout = float(query.get("timeout", "300"))
                try:
                    record = await service.wait(job_id,
                                                timeout=timeout)
                except asyncio.TimeoutError:
                    record = service.get(job_id).record()
                    record["timed_out"] = True
                    return 408, record
                return 200, record
        return 404, {"error": f"no route for {method} {path}",
                     "type": "ServiceError"}


class ServiceThread:
    """A service + endpoint running on a daemon thread.

    The constructor blocks until the endpoint is listening (or the
    loop failed to start); :meth:`stop` shuts both down and joins the
    thread.  Use :attr:`port` /:meth:`client` from the calling
    thread."""

    def __init__(self, config: Optional[ServiceConfig] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 startup_timeout: float = 30.0):
        self._config = config
        self._host = host
        self._requested_port = port
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self.service: Optional[SimulationService] = None
        self.port: Optional[int] = None
        self._thread = threading.Thread(target=self._main,
                                        name="repro-service",
                                        daemon=True)
        self._thread.start()
        if not self._ready.wait(startup_timeout):
            raise ServiceError("service thread failed to start in "
                               f"{startup_timeout:.0f}s")
        if self._startup_error is not None:
            raise ServiceError(
                f"service thread failed: {self._startup_error}")

    def _main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # noqa: BLE001 — reported to caller
            self._startup_error = exc
            self._ready.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self.service = SimulationService(self._config)
        await self.service.start()
        server = ServiceServer(self.service, host=self._host,
                               port=self._requested_port)
        await server.start()
        self.port = server.port
        self._ready.set()
        await self._stop_event.wait()
        await server.stop()
        await self.service.shutdown()

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is not None and self._stop_event is not None \
                and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout)

    def client(self, timeout: float = 120.0):
        from .client import ServiceClient
        return ServiceClient(self._host, self.port, timeout=timeout)
