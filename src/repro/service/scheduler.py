"""The asyncio simulation service: admission -> cache -> workers.

One event loop owns every piece of mutable state (jobs table,
admission queue, single-flight table, counters); simulations run in
worker threads via ``asyncio.to_thread`` so the loop stays responsive
to submissions, status queries and cancels while partitions grind.
The flow of one submission::

    submit(config)
      normalize + fingerprint ............ executor.normalize_config
      archived hit? ...................... complete from results/runs
      identical config in flight? ........ attach single-flight
      quota check + priority enqueue ..... admission.admit
    worker pops highest priority
      late cache check (a sibling service sharing the registry
      may have filled the key meanwhile)
      execute on the configured backend; the job's cancel event is
      polled by the harness stop hook every wavefront pass
      archive = cache fill; complete leader + followers

Cancellation: a queued job completes as ``cancelled`` immediately (its
heap entry is popped and skipped later); a running job's cancel event
stops the simulation within one pass.  A cancelled leader's followers
are requeued — the first becomes the new leader — so one tenant's
cancel never discards another tenant's accepted request.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field as dataclass_field
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..errors import JobNotFoundError, ReproError
from ..observability.tracer import RecordingTracer
from ..obsplane import (
    EV_ADMITTED,
    EV_CACHE_HIT,
    EV_CANCELLED,
    EV_COALESCED,
    EV_DONE,
    EV_EXECUTING,
    EV_FAILED,
    EV_QUEUED,
    EV_REJECTED,
    EV_SUBMITTED,
    NULL_SERVICE_METRICS,
    ServiceMetrics,
    get_logger,
    log_record,
    mint_corr_id,
    open_event_log,
)
from ..telemetry import RunRegistry, Telemetry, config_fingerprint
from .admission import AdmissionController, TenantQuota
from .cache import ResultCache
from .executor import execute_config, normalize_config
from .jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    SOURCE_CACHE,
    SOURCE_COALESCED,
    SOURCE_EXECUTION,
    Job,
    result_summary,
)


@dataclass
class ServiceConfig:
    """Knobs of one service instance."""

    #: concurrent simulation executions
    workers: int = 2
    #: the registry directory that is both archive and cache
    runs_dir: Union[str, Path] = "results/runs"
    #: when set, each executed job keeps a live-status file here
    #: (``repro watch --job`` follows it)
    live_dir: Optional[Union[str, Path]] = None
    #: telemetry sample interval for executed jobs (0: none unless
    #: live_dir is set, which implies 50)
    metrics_every: int = 0
    #: when set, lifecycle events append to this JSONL file
    #: (``repro tail`` follows it); None keeps the null sink
    event_log: Optional[Union[str, Path]] = None
    #: per-job trace capture ring for stitched traces
    #: (``repro trace --job``); 0 attaches no tracer
    trace_events: int = 0
    #: wall-clock service metrics (/metrics, repro top); a few dict
    #: ops per job event — False swaps in the null surface
    service_metrics: bool = True
    default_quota: TenantQuota = dataclass_field(
        default_factory=TenantQuota)
    quotas: Dict[str, TenantQuota] = dataclass_field(
        default_factory=dict)


class SimulationService:
    """The job service; every public coroutine runs on its loop."""

    def __init__(self, config: Optional[ServiceConfig] = None,
                 registry: Optional[RunRegistry] = None):
        self.config = config or ServiceConfig()
        self.registry = registry or RunRegistry(self.config.runs_dir)
        self.cache = ResultCache(self.registry)
        self.admission = AdmissionController(
            default_quota=self.config.default_quota,
            quotas=self.config.quotas)
        self.jobs: Dict[str, Job] = {}
        #: job ids in the order workers dispatched them — the priority
        #: ordering proof the tests pin
        self.execution_log: List[str] = []
        self.counters = {
            "submitted": 0,
            "rejected": 0,
            "executions": 0,
            "cache_hits": 0,
            "coalesced": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
        }
        self.events = open_event_log(self.config.event_log)
        self.metrics = ServiceMetrics() \
            if self.config.service_metrics else NULL_SERVICE_METRICS
        self._log = get_logger("repro.service")
        self._seq = 0
        self._running = False
        self._workers: List[asyncio.Task] = []
        self._work = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        """Spawn the worker pool (jobs may be submitted before this —
        they queue up and run once workers exist)."""
        if self._running:
            return
        self._running = True
        self._workers = [
            asyncio.create_task(self._worker(), name=f"svc-worker-{i}")
            for i in range(max(1, self.config.workers))]
        self._work.set()

    async def shutdown(self) -> None:
        """Stop the workers after their current jobs finish; queued
        jobs stay queued (a restarted service would pick them up via
        resubmission)."""
        self._running = False
        self._work.set()
        if self._workers:
            await asyncio.gather(*self._workers,
                                 return_exceptions=True)
        self._workers = []

    async def drain(self) -> None:
        """Wait until every submitted job is terminal."""
        await self._idle.wait()

    # -- submission -------------------------------------------------------

    async def submit(self, config: dict, tenant: str = "default",
                     priority: int = 0, name: str = "") -> Job:
        """Admit one request; returns the job (possibly already
        terminal — a cache hit completes here).  Raises
        :class:`~repro.errors.QuotaExceededError` or
        :class:`~repro.errors.ServiceError` without creating a job."""
        normalized = normalize_config(config)
        fingerprint = config_fingerprint(normalized)
        self._seq += 1
        job = Job(job_id=f"job-{self._seq:06d}", tenant=tenant,
                  config=normalized, fingerprint=fingerprint,
                  priority=int(priority), name=name,
                  corr_id=mint_corr_id())
        if self.events.enabled:
            self.events.emit(EV_SUBMITTED, corr=job.corr_id,
                             tenant=tenant, fingerprint=fingerprint,
                             job=job.job_id, priority=job.priority)
        # 1. archived hit: serve from results/runs without queueing
        lookup_start = time.perf_counter()
        record = self.cache.lookup(fingerprint)
        job.cache_lookup_s = time.perf_counter() - lookup_start
        self.metrics.observe("cache_lookup", tenant,
                             job.cache_lookup_s)
        if record is not None:
            self._register(job)
            self._complete_from_record(job, record, SOURCE_CACHE)
            return job
        # 2. identical config in flight: ride it single-flight
        if self.cache.flight.leader_for(fingerprint) is not None:
            self._register(job)
            self.cache.flight.attach(fingerprint, job)
            self.counters["coalesced"] += 1
            self.metrics.inc("coalesced", tenant)
            if self.events.enabled:
                self.events.emit(EV_COALESCED, corr=job.corr_id,
                                 tenant=tenant,
                                 fingerprint=fingerprint,
                                 job=job.job_id)
            return job
        # 3. miss: quota-checked admission as the new leader
        try:
            self.admission.admit(job)
        except ReproError as exc:
            self.counters["rejected"] += 1
            self.metrics.inc("rejected", tenant)
            if self.events.enabled:
                self.events.emit(EV_REJECTED, corr=job.corr_id,
                                 tenant=tenant,
                                 fingerprint=fingerprint,
                                 job=job.job_id, error=str(exc))
            log_record(self._log, EV_REJECTED, corr=job.corr_id,
                       tenant=tenant, error=str(exc))
            raise
        self._register(job)
        self.cache.flight.begin(fingerprint, job)
        if self.events.enabled:
            self.events.emit(EV_ADMITTED, corr=job.corr_id,
                             tenant=tenant, fingerprint=fingerprint,
                             job=job.job_id)
            self.events.emit(EV_QUEUED, corr=job.corr_id,
                             tenant=tenant, fingerprint=fingerprint,
                             job=job.job_id,
                             priority=job.priority)
        self._work.set()
        return job

    def _register(self, job: Job) -> None:
        self.jobs[job.job_id] = job
        self.counters["submitted"] += 1
        self.metrics.inc("submitted", job.tenant)
        self._idle.clear()

    # -- queries ----------------------------------------------------------

    def get(self, job_id: str) -> Job:
        try:
            return self.jobs[job_id]
        except KeyError:
            raise JobNotFoundError(job_id)

    def list_jobs(self, tenant: Optional[str] = None) -> List[dict]:
        return [job.record() for job in self.jobs.values()
                if tenant is None or job.tenant == tenant]

    async def wait(self, job_id: str,
                   timeout: Optional[float] = None) -> dict:
        """Block until the job is terminal (or the timeout lapses —
        then ``asyncio.TimeoutError``); returns the job record."""
        job = self.get(job_id)
        if timeout is None:
            await job.done_event.wait()
        else:
            await asyncio.wait_for(job.done_event.wait(), timeout)
        return job.record()

    def stats(self) -> dict:
        states: Dict[str, int] = {}
        for job in self.jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        return {
            "workers": len(self._workers) or self.config.workers,
            "running": self._running,
            "runs_dir": str(self.registry.root),
            "jobs": {"total": len(self.jobs), **states},
            "counters": dict(self.counters),
            "cache": self.cache.stats(),
            "admission": self.admission.snapshot(),
            "metrics": self.metrics.snapshot(self.gauges()),
        }

    def gauges(self) -> dict:
        """Scrape-time gauge values (queue depth per tenant, active
        jobs, worker count) — read from the admission controller, never
        maintained on the job hot path."""
        snap = self.admission.snapshot()
        return {
            "queue_depth": {
                tenant: entry.get("queued", 0)
                for tenant, entry in snap.get("tenants", {}).items()},
            "active_jobs": snap.get("active", 0),
            "workers": len(self._workers) or self.config.workers,
        }

    def metrics_text(self) -> str:
        """The Prometheus exposition ``GET /metrics`` serves."""
        return self.metrics.render(self.gauges())

    # -- cancellation -----------------------------------------------------

    async def cancel(self, job_id: str) -> Job:
        """Request cancellation; idempotent, returns the job."""
        job = self.get(job_id)
        if job.terminal:
            return job
        job.cancel_requested = True
        job.cancel_event.set()
        if job.state == QUEUED:
            # queued leaders hand their followers to a new leader;
            # queued followers just detach from their entry
            entry = self.cache.flight.leader_for(job.fingerprint)
            if entry is not None and entry.leader is job:
                self.cache.flight.finish(job.fingerprint)
                self._promote_followers(job.fingerprint,
                                        entry.followers)
            elif entry is not None and job in entry.followers:
                entry.followers.remove(job)
            self._finish(job, CANCELLED)
        # RUNNING: the stop hook sees the event within one pass and
        # the worker completes the cancellation
        return job

    def _promote_followers(self, fingerprint: str,
                           followers: List[Job]) -> None:
        live = [f for f in followers if not f.terminal]
        if not live:
            return
        leader, rest = live[0], live[1:]
        entry = self.cache.flight.begin(fingerprint, leader)
        entry.followers.extend(rest)
        self.admission.requeue(leader)
        self._work.set()

    # -- the worker loop --------------------------------------------------

    async def _worker(self) -> None:
        while True:
            job = self.admission.pop()
            if job is None:
                if not self._running:
                    return
                self._work.clear()
                if self.admission.queued_total:
                    continue
                if not self._running:
                    return
                await self._work.wait()
                continue
            if job.terminal:
                # cancelled while queued; slot already released
                continue
            await self._execute(job)

    async def _execute(self, job: Job) -> None:
        fingerprint = job.fingerprint
        job.queue_wait_s = max(time.time() - job.submitted, 0.0)
        self.metrics.observe("queue_wait", job.tenant,
                             job.queue_wait_s)
        # late hit: another service sharing this registry (or an
        # earlier leader of a different name) may have archived the
        # key between submit and dispatch
        record = self.registry.latest(fingerprint)
        if record is not None:
            entry = self.cache.flight.finish(fingerprint)
            self._complete_from_record(job, record, SOURCE_CACHE)
            if entry is not None:
                for follower in entry.followers:
                    if not follower.terminal:
                        self._complete_from_record(
                            follower, record, SOURCE_CACHE)
            return
        job.state = RUNNING
        job.started = time.time()
        self.execution_log.append(job.job_id)
        self.counters["executions"] += 1
        self.metrics.inc("executions", job.tenant)
        if self.events.enabled:
            self.events.emit(
                EV_EXECUTING, corr=job.corr_id, tenant=job.tenant,
                fingerprint=fingerprint, job=job.job_id,
                queue_wait_s=round(job.queue_wait_s, 6))
        log_record(self._log, EV_EXECUTING, corr=job.corr_id,
                   job=job.job_id, tenant=job.tenant)
        telemetry = self._telemetry_for(job)
        tracer = RecordingTracer(self.config.trace_events) \
            if self.config.trace_events > 0 else None
        error: Optional[str] = None
        outcome = None
        try:
            outcome = await asyncio.to_thread(
                execute_config, job.config, telemetry,
                job.cancel_event.is_set, corr_id=job.corr_id,
                events=self.events, tracer=tracer)
        except ReproError as exc:
            error = str(exc)
        except Exception as exc:  # noqa: BLE001 — job, not service, fails
            error = f"{type(exc).__name__}: {exc}"
        job.execution_s = time.time() - job.started
        self.metrics.observe("execution", job.tenant,
                             job.execution_s)
        entry = self.cache.flight.finish(fingerprint)
        followers = entry.followers if entry is not None else []
        if job.cancel_event.is_set():
            if outcome is not None:
                job.result = {
                    "target_cycles": outcome.result.target_cycles,
                    "partial": True,
                }
            self._finish(job, CANCELLED)
            self._promote_followers(fingerprint, followers)
            return
        if error is not None:
            job.error = error
            self._finish(job, FAILED)
            for follower in followers:
                if not follower.terminal:
                    follower.error = (f"coalesced onto {job.job_id} "
                                      f"which failed: {error}")
                    self._finish(follower, FAILED,
                                 source=SOURCE_COALESCED)
            return
        record = self.cache.store(outcome.result, job,
                                  backend=outcome.backend,
                                  extra=outcome.extra)
        self._complete_from_record(job, record, SOURCE_EXECUTION)
        for follower in followers:
            if not follower.terminal:
                self._complete_from_record(follower, record,
                                           SOURCE_COALESCED)

    def _telemetry_for(self, job: Job) -> Optional[Telemetry]:
        live_dir = self.config.live_dir
        every = self.config.metrics_every
        if live_dir is None and every <= 0:
            return None
        live_path = None
        if live_dir is not None:
            live_path = Path(live_dir) / f"{job.job_id}.json"
            job.live_path = str(live_path)
        return Telemetry(
            sample_every=every if every > 0 else 50,
            live_path=live_path,
            annotations={"job": job.job_id, "tenant": job.tenant,
                         "fingerprint": job.fingerprint,
                         "corr_id": job.corr_id})

    # -- completion -------------------------------------------------------

    def _complete_from_record(self, job: Job, record: dict,
                              source: str) -> None:
        job.run_id = record.get("run_id")
        job.result = result_summary(record)
        job.source = source
        if source == SOURCE_CACHE:
            self.counters["cache_hits"] += 1
            self.metrics.inc("cache_hits", job.tenant)
            if self.events.enabled:
                self.events.emit(
                    EV_CACHE_HIT, corr=job.corr_id,
                    tenant=job.tenant, fingerprint=job.fingerprint,
                    job=job.job_id, run_id=job.run_id or "")
        self._finish(job, DONE, source=source)

    def _finish(self, job: Job, state: str,
                source: Optional[str] = None) -> None:
        if job.terminal:
            return
        job.state = state
        if source is not None:
            job.source = source
        job.finished = time.time()
        if job.admitted:
            self.admission.release(job)
        if state == DONE:
            self.counters["completed"] += 1
            self.metrics.inc("completed", job.tenant)
        elif state == FAILED:
            self.counters["failed"] += 1
            self.metrics.inc("failed", job.tenant)
        elif state == CANCELLED:
            self.counters["cancelled"] += 1
            self.metrics.inc("cancelled", job.tenant)
        kind = {DONE: EV_DONE, FAILED: EV_FAILED,
                CANCELLED: EV_CANCELLED}.get(state, EV_DONE)
        if self.events.enabled:
            self.events.emit(kind, corr=job.corr_id,
                             tenant=job.tenant,
                             fingerprint=job.fingerprint,
                             job=job.job_id, source=job.source,
                             run_id=job.run_id or "",
                             error=job.error)
        log_record(self._log, kind, corr=job.corr_id,
                   job=job.job_id, source=job.source,
                   error=job.error)
        job.done_event.set()
        if all(j.terminal for j in self.jobs.values()):
            self._idle.set()
