"""Job objects for the multi-tenant simulation service.

A :class:`Job` is one tenant request moving through the service's
lifecycle::

    queued --> running --> done
       |          |    \\-> failed
       \\----------+------> cancelled

plus the two shortcut completions that never occupy a worker:

* ``source == "cache"`` — the config's fingerprint matched an archived
  run; the job completed at submit time from ``results/runs/``,
* ``source == "coalesced"`` — an identical config was already queued or
  running; the job rode the in-flight leader's execution single-flight
  and completed (or failed) with it.

Jobs are in-memory objects; their durable output is the archived run
record in the :class:`~repro.telemetry.runs.RunRegistry`, referenced by
``run_id``.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: states from which a job never moves again
TERMINAL = frozenset({DONE, FAILED, CANCELLED})

#: how a terminal result was produced
SOURCE_EXECUTION = "execution"
SOURCE_CACHE = "cache"
SOURCE_COALESCED = "coalesced"


def result_summary(record: dict) -> dict:
    """The headline numbers of one archived run record — what job
    queries and ``repro submit --wait`` report (the full record stays
    in the registry under ``run_id``)."""
    return {
        "run_id": record.get("run_id"),
        "target_cycles": record.get("target_cycles", 0),
        "wall_ns": record.get("wall_ns", 0.0),
        "rate_hz": record.get("rate_hz", 0.0),
        "tokens_transferred": record.get("tokens_transferred", 0),
        "backend": record.get("backend", ""),
    }


@dataclass
class Job:
    """One admitted (or shortcut-completed) service request."""

    job_id: str
    tenant: str
    config: dict
    fingerprint: str
    priority: int = 0
    name: str = ""
    state: str = QUEUED
    source: str = ""
    run_id: Optional[str] = None
    error: str = ""
    live_path: Optional[str] = None
    #: request-scoped correlation id, minted at submit and propagated
    #: into every worker/agent subprocess the job touches
    corr_id: str = ""
    submitted: float = field(default_factory=time.time)
    started: Optional[float] = None
    finished: Optional[float] = None
    #: phase latencies (seconds), filled as the job crosses each phase
    cache_lookup_s: Optional[float] = None
    queue_wait_s: Optional[float] = None
    execution_s: Optional[float] = None
    #: headline result numbers (see :func:`result_summary`); partial
    #: for cancelled jobs, None until terminal
    result: Optional[dict] = None
    #: True when the job went through admission (and must be released)
    admitted: bool = False
    cancel_requested: bool = False

    # -- coordination (not serialized) ------------------------------------
    #: checked by the executor's stop hook every wavefront pass
    cancel_event: threading.Event = field(default_factory=threading.Event,
                                          repr=False, compare=False)
    #: set exactly once when the job reaches a terminal state
    done_event: asyncio.Event = field(default_factory=asyncio.Event,
                                      repr=False, compare=False)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL

    def record(self) -> dict:
        """JSON-able view of the job — what the HTTP endpoint serves
        and ``repro jobs`` lists."""
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "name": self.name,
            "state": self.state,
            "source": self.source,
            "priority": self.priority,
            "fingerprint": self.fingerprint,
            "config": self.config,
            "run_id": self.run_id,
            "error": self.error,
            "live_path": self.live_path,
            "corr_id": self.corr_id,
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
            "cache_lookup_s": self.cache_lookup_s,
            "queue_wait_s": self.queue_wait_s,
            "execution_s": self.execution_s,
            "cancel_requested": self.cancel_requested,
            "result": self.result,
        }
