"""Blocking client for the service's JSON-over-HTTP endpoint.

Speaks the same minimal one-shot HTTP/1.1 the server serves (stdlib
sockets only — symmetric with the hand-rolled server and free of
``urllib`` redirect/proxy magic).  Error responses are re-raised as
the same typed exceptions the service raised on its side:
``QuotaExceededError`` for 429, ``JobNotFoundError`` for 404,
``ServiceError`` otherwise — so CLI and tests handle one error
vocabulary whether they run in-process or over the wire.
"""

from __future__ import annotations

import json
import socket
from typing import List, Optional, Tuple

from ..errors import (
    JobNotFoundError,
    QuotaExceededError,
    ServiceError,
)

DEFAULT_PORT = 8642


def parse_server(text: str) -> Tuple[str, int]:
    """``HOST[:PORT]`` -> (host, port); bare ``:PORT`` keeps the
    default host."""
    host, _, port = text.rpartition(":")
    if not host:
        host, port = (text, "") if not text.startswith(":") else \
            ("", text[1:])
    host = host or "127.0.0.1"
    try:
        return host, int(port) if port else DEFAULT_PORT
    except ValueError:
        raise ServiceError(f"--server wants HOST[:PORT], got {text!r}")


class ServiceClient:
    """One service endpoint, addressed for repeated blocking calls."""

    def __init__(self, host: str = "127.0.0.1",
                 port: int = DEFAULT_PORT, timeout: float = 120.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- the wire ---------------------------------------------------------

    def request_raw(self, method: str, path: str,
                    body: Optional[dict] = None,
                    timeout: Optional[float] = None
                    ) -> Tuple[int, bytes]:
        """One exchange, body returned verbatim (``/metrics`` is
        text, not JSON)."""
        payload = json.dumps(body).encode() if body is not None else b""
        head = (f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n").encode("latin-1")
        try:
            with socket.create_connection(
                    (self.host, self.port),
                    timeout=timeout or self.timeout) as conn:
                conn.sendall(head + payload)
                chunks = []
                while True:
                    data = conn.recv(65536)
                    if not data:
                        break
                    chunks.append(data)
        except OSError as exc:
            raise ServiceError(
                f"cannot reach service at {self.host}:{self.port}: "
                f"{exc}")
        raw = b"".join(chunks)
        header, _, body_bytes = raw.partition(b"\r\n\r\n")
        try:
            status = int(header.split(None, 2)[1])
        except (IndexError, ValueError) as exc:
            raise ServiceError(f"malformed service response: {exc}")
        return status, body_bytes

    def request(self, method: str, path: str, body: Optional[dict] = None,
                timeout: Optional[float] = None) -> Tuple[int, dict]:
        status, body_bytes = self.request_raw(method, path, body,
                                              timeout=timeout)
        try:
            parsed = json.loads(body_bytes) if body_bytes else {}
        except ValueError as exc:
            raise ServiceError(f"malformed service response: {exc}")
        return status, parsed

    def _call(self, method: str, path: str,
              body: Optional[dict] = None,
              timeout: Optional[float] = None) -> dict:
        status, payload = self.request(method, path, body,
                                       timeout=timeout)
        if status < 400:
            return payload
        kind = payload.get("type", "")
        message = payload.get("error", f"HTTP {status}")
        if kind == "QuotaExceededError":
            raise QuotaExceededError(
                payload.get("tenant", "?"), payload.get("kind", "?"),
                payload.get("limit", 0), payload.get("current", 0))
        if kind == "JobNotFoundError":
            raise JobNotFoundError(payload.get("job_id", "?"))
        raise ServiceError(message)

    # -- the API ----------------------------------------------------------

    def health(self) -> dict:
        return self._call("GET", "/healthz")

    def stats(self) -> dict:
        return self._call("GET", "/stats")

    def metrics(self) -> str:
        """The Prometheus text exposition from ``GET /metrics``."""
        status, body = self.request_raw("GET", "/metrics")
        if status >= 400:
            raise ServiceError(f"GET /metrics failed: HTTP {status}")
        return body.decode("utf-8", "replace")

    def submit(self, config: dict, tenant: str = "default",
               priority: int = 0, name: str = "") -> dict:
        return self._call("POST", "/jobs", {
            "config": config, "tenant": tenant,
            "priority": priority, "name": name})

    def job(self, job_id: str) -> dict:
        return self._call("GET", f"/jobs/{job_id}")

    def jobs(self, tenant: Optional[str] = None) -> List[dict]:
        path = "/jobs" + (f"?tenant={tenant}" if tenant else "")
        return self._call("GET", path)["jobs"]

    def cancel(self, job_id: str) -> dict:
        return self._call("POST", f"/jobs/{job_id}/cancel")

    def wait(self, job_id: str, timeout: float = 300.0) -> dict:
        """Long-poll until the job is terminal; returns the record
        (``timed_out: true`` when the deadline lapsed first)."""
        status, payload = self.request(
            "GET", f"/jobs/{job_id}/wait?timeout={timeout:g}",
            timeout=timeout + self.timeout)
        if status == 408:
            return payload
        if status >= 400:
            if payload.get("type") == "JobNotFoundError":
                raise JobNotFoundError(payload.get("job_id", "?"))
            raise ServiceError(payload.get("error", f"HTTP {status}"))
        return payload
