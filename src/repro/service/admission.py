"""Admission control: per-tenant quotas over a priority queue.

At millions-of-users scale the queue is the contended resource, so
admission happens *before* a job costs anything: a submission that
would push its tenant past quota is rejected with a typed
:class:`~repro.errors.QuotaExceededError` and never enters the heap.
Cache hits and coalesced submissions bypass admission entirely — they
occupy no queue slot and no worker, so rejecting them would only
punish the cheap requests.

Scheduling order is strict priority (larger number first), FIFO within
a priority level (a monotonic sequence number breaks ties), matching
the paper's framing of partitioned simulation as a batch workload:
short interactive probes outrank bulk sweeps without starving them of
eventual service.

The controller is single-threaded by design — every mutation happens
on the service's event loop — so there are no locks to get wrong.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import QuotaExceededError, ServiceError
from .jobs import Job


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission limits.

    Attributes:
        max_queued: jobs the tenant may have waiting in the queue.
        max_active: jobs the tenant may have admitted and not yet
            terminal (queued + running); the queue limit bounds burst
            submissions, the active limit bounds worker occupancy.
    """

    max_queued: int = 16
    max_active: int = 64

    @classmethod
    def parse(cls, text: str) -> "TenantQuota":
        """``QUEUED:ACTIVE`` (e.g. ``4:8``) -> quota."""
        try:
            queued, active = text.split(":")
            return cls(max_queued=int(queued), max_active=int(active))
        except ValueError:
            raise ServiceError(
                f"quota wants QUEUED:ACTIVE, got {text!r}")


class AdmissionController:
    """The quota-checked priority queue in front of the worker pool."""

    def __init__(self, default_quota: Optional[TenantQuota] = None,
                 quotas: Optional[Dict[str, TenantQuota]] = None):
        self.default_quota = default_quota or TenantQuota()
        self.quotas = dict(quotas or {})
        #: heap of (-priority, seq, job) — max-priority, FIFO in ties
        self._heap: List[Tuple[int, int, Job]] = []
        self._seq = 0
        self._queued: Dict[str, int] = {}
        self._active: Dict[str, int] = {}

    def quota_for(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)

    # -- admission --------------------------------------------------------

    def admit(self, job: Job) -> None:
        """Quota-check and enqueue one job; raises
        :class:`QuotaExceededError` without enqueueing on violation."""
        quota = self.quota_for(job.tenant)
        queued = self._queued.get(job.tenant, 0)
        active = self._active.get(job.tenant, 0)
        if queued >= quota.max_queued:
            raise QuotaExceededError(job.tenant, "queued",
                                     quota.max_queued, queued)
        if active >= quota.max_active:
            raise QuotaExceededError(job.tenant, "active",
                                     quota.max_active, active)
        self.requeue(job)

    def requeue(self, job: Job) -> None:
        """Enqueue bypassing the quota check — used when a coalesced
        follower is promoted to leader after its leader was cancelled
        (the follower was already accepted once; re-judging it against
        the quota could strand an accepted request)."""
        heapq.heappush(self._heap, (-job.priority, self._seq, job))
        self._seq += 1
        job.admitted = True
        self._queued[job.tenant] = self._queued.get(job.tenant, 0) + 1
        self._active[job.tenant] = self._active.get(job.tenant, 0) + 1

    def pop(self) -> Optional[Job]:
        """The highest-priority queued job (None when empty).  The
        caller owns the popped job's fate; cancelled-while-queued jobs
        are popped like any other and skipped by the worker."""
        if not self._heap:
            return None
        _, _, job = heapq.heappop(self._heap)
        count = self._queued.get(job.tenant, 0) - 1
        if count > 0:
            self._queued[job.tenant] = count
        else:
            self._queued.pop(job.tenant, None)
        return job

    def release(self, job: Job) -> None:
        """Return one admitted job's active slot (exactly once per
        admitted job, when it reaches a terminal state)."""
        count = self._active.get(job.tenant, 0) - 1
        if count > 0:
            self._active[job.tenant] = count
        else:
            self._active.pop(job.tenant, None)

    # -- introspection ----------------------------------------------------

    @property
    def queued_total(self) -> int:
        return len(self._heap)

    @property
    def active_total(self) -> int:
        return sum(self._active.values())

    def snapshot(self) -> dict:
        """Per-tenant admission state for ``/stats``."""
        tenants = sorted(set(self._queued) | set(self._active))
        return {
            "queued": self.queued_total,
            "active": self.active_total,
            "tenants": {
                tenant: {
                    "queued": self._queued.get(tenant, 0),
                    "active": self._active.get(tenant, 0),
                    "max_queued": self.quota_for(tenant).max_queued,
                    "max_active": self.quota_for(tenant).max_active,
                }
                for tenant in tenants
            },
        }
