"""Execute one service job config synchronously.

A job config is a plain JSON dict naming what to run.  Two kinds:

* ``{"kind": "simulate", ...}`` — compile a circuit (from a ``circuit``
  file path or inline ``circuit_text``), partition it per ``extract``,
  and run it on one of the four execution backends (``inproc``,
  ``process``, ``process-shm``, ``process-socket``),
* ``{"kind": "experiment", "experiment": NAME}`` — one of the paper's
  table/figure experiments; the final partitioned run it performs is
  what gets archived (and therefore cached),
* ``{"kind": "farm", "hosts": MANIFEST, ...}`` — a simulate-shaped run
  placed across the simulated run farm (rollback + re-placement on
  host death); ``kill_host``/``kill_at_pass`` inject a host loss.

:func:`normalize_config` fills every default *before* the config is
fingerprinted, so semantically identical requests — one spelling
``cycles`` explicitly, one relying on the default — hash to the same
cache key.  This is the function that decides cache identity; keep it
deterministic and order-insensitive.

``should_stop`` threads the service's cancellation signal into the
harness's per-pass ``stop`` hook, so a cancel lands within one
wavefront pass instead of after the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional

from ..errors import ServiceError
from ..fireripper import FireRipper, PartitionGroup, PartitionSpec
from ..firrtl import parse_circuit
from ..obsplane.stitch import event_to_dict
from ..platform import (
    ETHERNET_100G,
    HOST_PCIE,
    PCIE_P2P,
    QSFP_AURORA,
)

#: transport name -> modelled transport profile (the CLI shares this)
TRANSPORTS = {
    "qsfp": QSFP_AURORA,
    "pcie": PCIE_P2P,
    "host-pcie": HOST_PCIE,
    "ethernet": ETHERNET_100G,
}

SIMULATE_DEFAULTS = {
    "mode": "exact",
    "transport": "qsfp",
    "freq": 30.0,
    "cycles": 1000,
    "backend": "auto",
}

FARM_DEFAULTS = {
    "mode": "exact",
    "transport": "qsfp",
    "freq": 30.0,
    "cycles": 1000,
    "checkpoint_every": 100,
    "kill_host": "",
    "kill_at_pass": 0,
}


@dataclass
class ExecutionOutcome:
    """One executed job: the result, the backend that actually ran it,
    and extra top-level keys for the archived record."""

    result: object
    backend: str
    extra: Optional[dict] = None


def _normalize_extract(extract) -> List[List[str]]:
    if not isinstance(extract, (list, tuple)) or not extract:
        raise ServiceError(
            "simulate config wants a non-empty 'extract' list "
            "(one entry per FPGA)")
    groups = []
    for entry in extract:
        if isinstance(entry, str):
            paths = [p for p in entry.split(",") if p]
        elif isinstance(entry, (list, tuple)):
            paths = [str(p) for p in entry]
        else:
            raise ServiceError(
                f"extract entries are strings or lists, got {entry!r}")
        if not paths:
            raise ServiceError("empty extract group")
        groups.append(paths)
    return groups


def normalize_config(config: dict) -> dict:
    """Validate and canonicalize a job config — defaults filled, types
    coerced — so the fingerprint of two equivalent requests matches."""
    if not isinstance(config, dict):
        raise ServiceError(f"job config must be a dict, got "
                           f"{type(config).__name__}")
    kind = config.get("kind", "simulate")
    if kind == "simulate":
        normalized = {"kind": "simulate"}
        if "circuit_text" in config:
            normalized["circuit_text"] = str(config["circuit_text"])
        elif "circuit" in config:
            normalized["circuit"] = str(config["circuit"])
        else:
            raise ServiceError(
                "simulate config wants 'circuit' (a file path) or "
                "'circuit_text' (inline IR)")
        normalized["extract"] = _normalize_extract(
            config.get("extract"))
        for key, default in SIMULATE_DEFAULTS.items():
            value = config.get(key, default)
            normalized[key] = type(default)(value)
        if normalized["transport"] not in TRANSPORTS:
            raise ServiceError(
                f"unknown transport {normalized['transport']!r}; "
                f"valid: {', '.join(sorted(TRANSPORTS))}")
        if normalized["cycles"] < 1:
            raise ServiceError("cycles must be >= 1")
        unknown = set(config) - set(normalized) - {"extract"}
        if unknown:
            raise ServiceError(
                f"unknown simulate config key(s): "
                f"{', '.join(sorted(unknown))}")
        return normalized
    if kind == "experiment":
        name = config.get("experiment")
        if not name or not isinstance(name, str):
            raise ServiceError(
                "experiment config wants an 'experiment' name")
        unknown = set(config) - {"kind", "experiment"}
        if unknown:
            raise ServiceError(
                f"unknown experiment config key(s): "
                f"{', '.join(sorted(unknown))}")
        return {"kind": "experiment", "experiment": name}
    if kind == "farm":
        normalized = {"kind": "farm"}
        if "circuit_text" in config:
            normalized["circuit_text"] = str(config["circuit_text"])
        elif "circuit" in config:
            normalized["circuit"] = str(config["circuit"])
        else:
            raise ServiceError(
                "farm config wants 'circuit' (a file path) or "
                "'circuit_text' (inline IR)")
        normalized["extract"] = _normalize_extract(
            config.get("extract"))
        # the manifest is canonicalized through FarmSpec so two
        # spellings of the same farm fingerprint identically
        from ..farm import FarmSpec
        normalized["hosts"] = FarmSpec.from_dict(
            config.get("hosts") or {}).to_dict()
        colocate = config.get("colocate", [])
        if colocate:
            normalized["colocate"] = _normalize_extract(colocate)
        else:
            normalized["colocate"] = []
        for key, default in FARM_DEFAULTS.items():
            value = config.get(key, default)
            normalized[key] = type(default)(value)
        if normalized["transport"] not in TRANSPORTS:
            raise ServiceError(
                f"unknown transport {normalized['transport']!r}; "
                f"valid: {', '.join(sorted(TRANSPORTS))}")
        if normalized["cycles"] < 1:
            raise ServiceError("cycles must be >= 1")
        unknown = set(config) - set(normalized) \
            - {"extract", "hosts", "colocate"}
        if unknown:
            raise ServiceError(
                f"unknown farm config key(s): "
                f"{', '.join(sorted(unknown))}")
        return normalized
    raise ServiceError(
        f"unknown job kind {kind!r}; valid: simulate, experiment, "
        f"farm")


def build_simulation(config: dict, telemetry=None, tracer=None):
    """Compile and wire the partitioned simulation a normalized
    simulate config describes (no run)."""
    if "circuit_text" in config:
        text = config["circuit_text"]
    else:
        path = Path(config["circuit"])
        try:
            text = path.read_text()
        except OSError as exc:
            raise ServiceError(f"cannot read circuit "
                               f"{config['circuit']!r}: {exc}")
    circuit = parse_circuit(text)
    groups = [PartitionGroup.make(f"fpga{i}", paths)
              for i, paths in enumerate(config["extract"])]
    spec = PartitionSpec(mode=config["mode"], groups=groups)
    design = FireRipper(spec).compile(circuit)
    return design.build_simulation(
        TRANSPORTS[config["transport"]],
        host_freq_mhz=config["freq"],
        telemetry=telemetry,
        tracer=tracer)


def _obs_extra(corr_id: str, worker_corr, tracer) -> Optional[dict]:
    """The ``extra={"obs": ...}`` payload of an archived record —
    observability identity only, never part of the cache fingerprint
    or the result detail."""
    obs: dict = {}
    if corr_id:
        obs["corr_id"] = corr_id
        if worker_corr:
            obs["worker_corr"] = dict(worker_corr)
    if tracer is not None and len(tracer):
        obs["trace_events"] = [event_to_dict(e)
                               for e in tracer.events]
    return obs or None


def execute_config(config: dict, telemetry=None,
                   should_stop: Optional[Callable[[], bool]] = None,
                   corr_id: str = "",
                   events=None,
                   tracer=None) -> ExecutionOutcome:
    """Run one normalized job config to completion (or until
    ``should_stop`` fires) and return the outcome.

    ``corr_id``/``events``/``tracer`` thread the observability plane
    through: the correlation id rides into every worker and agent the
    run forks (and is echoed back per partition), lifecycle events for
    the execution fabric land in ``events``, and captured trace spans
    are archived under the record's ``obs`` extra for stitching."""
    kind = config.get("kind", "simulate")
    if kind == "simulate":
        sim = build_simulation(config, telemetry=telemetry,
                               tracer=tracer)
        sim.corr_id = corr_id
        if events is not None:
            sim.events = events
        stop = None
        if should_stop is not None:
            def stop(_sim, _check=should_stop):  # noqa: F811
                return _check()
        result = sim.run(config["cycles"], stop=stop,
                         backend=config["backend"])
        extra = None
        obs = _obs_extra(corr_id,
                         getattr(sim, "last_worker_corr", {}), tracer)
        if obs:
            extra = {"obs": obs}
        return ExecutionOutcome(result,
                                sim.last_run_backend or "inproc",
                                extra=extra)
    if kind == "farm":
        # imported lazily, mirroring the experiment branch
        from ..farm import FarmManager, FarmSpec
        if should_stop is not None and should_stop():
            raise ServiceError("cancelled before start")
        spec = FarmSpec.from_dict(config["hosts"])

        def build():
            sim = build_simulation(config, telemetry=telemetry,
                                   tracer=tracer)
            sim.corr_id = corr_id
            if events is not None:
                sim.events = events
            return sim

        host_faults = {config["kill_host"]: config["kill_at_pass"]} \
            if config["kill_host"] else None
        manager = FarmManager(
            build, spec, colocate=config["colocate"],
            checkpoint_every=config["checkpoint_every"],
            host_faults=host_faults)
        report = manager.launch(config["cycles"])
        extra = {"farm": report.to_extra()}
        obs = _obs_extra(
            corr_id,
            getattr(manager.backend, "last_worker_corr", {}),
            tracer)
        if obs:
            extra["obs"] = obs
        return ExecutionOutcome(report.result, "farm", extra=extra)
    if kind == "experiment":
        # imported lazily: the experiment modules pull in every target
        # and sweep, which a simulate-only service never needs
        from ..experiments.runner import run_experiment
        from ..observability import profile_session
        if should_stop is not None and should_stop():
            raise ServiceError("cancelled before start")
        with profile_session() as session:
            text = run_experiment(config["experiment"])
        if not session.results:
            raise ServiceError(
                f"experiment {config['experiment']!r} performed no "
                "partitioned run to archive")
        extra = {"experiment": {"name": config["experiment"],
                                "text": text}}
        obs = _obs_extra(corr_id, {}, tracer)
        if obs:
            extra["obs"] = obs
        return ExecutionOutcome(session.results[-1], "inproc",
                                extra=extra)
    raise ServiceError(f"unknown job kind {kind!r}")
