"""Multi-tenant simulation service with a fingerprint-keyed result
cache.

The paper's workload only pays off at scale behind a service that
queues, schedules and *deduplicates* runs; this package is that layer
over the existing experiment pool and all four execution backends:

* :mod:`~repro.service.jobs` — the job lifecycle objects,
* :mod:`~repro.service.admission` — per-tenant quotas over a strict
  priority queue,
* :mod:`~repro.service.cache` — the fingerprint-keyed result cache on
  the :class:`~repro.telemetry.runs.RunRegistry`, with single-flight
  coalescing of identical in-flight configs,
* :mod:`~repro.service.executor` — config normalization (cache
  identity) and synchronous execution on any backend,
* :mod:`~repro.service.scheduler` — the asyncio
  :class:`SimulationService` tying admission, cache and the bounded
  worker pool together,
* :mod:`~repro.service.server` / :mod:`~repro.service.client` — the
  JSON-over-HTTP endpoint (``repro serve``) and its blocking client
  (``repro submit/jobs/cancel``).
"""

from .admission import AdmissionController, TenantQuota
from .cache import InFlightEntry, ResultCache, SingleFlight
from .executor import (
    ExecutionOutcome,
    TRANSPORTS,
    build_simulation,
    execute_config,
    normalize_config,
)
from .jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    SOURCE_CACHE,
    SOURCE_COALESCED,
    SOURCE_EXECUTION,
    TERMINAL,
    Job,
    result_summary,
)
from .scheduler import ServiceConfig, SimulationService
from .server import ServiceServer, ServiceThread
from .client import DEFAULT_PORT, ServiceClient, parse_server

__all__ = [
    "AdmissionController",
    "TenantQuota",
    "InFlightEntry",
    "ResultCache",
    "SingleFlight",
    "ExecutionOutcome",
    "TRANSPORTS",
    "build_simulation",
    "execute_config",
    "normalize_config",
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "TERMINAL",
    "SOURCE_EXECUTION",
    "SOURCE_CACHE",
    "SOURCE_COALESCED",
    "Job",
    "result_summary",
    "ServiceConfig",
    "SimulationService",
    "ServiceServer",
    "ServiceThread",
    "DEFAULT_PORT",
    "ServiceClient",
    "parse_server",
]
