"""Fingerprint-keyed result cache over the run registry.

The economics of a simulation service are dominated by repeats: at
scale, most submissions are configurations someone already ran
(LightningSimV2's observation, and the reason the RunRegistry stores a
``config_fingerprint`` with every archived run).  The cache exploits
that in two layers:

* **Archived hits** — :meth:`ResultCache.lookup` asks the registry for
  the newest archived run of the config's fingerprint.  A hit costs
  one index read plus one record read; the job completes at submit
  time without touching the queue.  Because every field of a run
  record derives from the deterministic timing overlay, the served
  record is bit-identical to what re-simulating would produce.
* **Single-flight coalescing** — identical configs submitted while the
  first is still queued or running attach to that leader
  (:class:`SingleFlight`) instead of executing again.  N simultaneous
  identical requests cost one simulation; followers complete (or fail)
  with the leader.  If the leader is cancelled, its first follower is
  promoted so accepted requests are never stranded.

Misses archive on completion (:meth:`ResultCache.store`), so the first
execution of any config fills the cache for every later request.
Eviction is the registry's ``gc`` (age/count/size pruning behind
``repro runs gc``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..telemetry.runs import RunRegistry
from .jobs import Job


@dataclass
class InFlightEntry:
    """One fingerprint's in-flight execution: the leader doing the
    work and the followers riding it."""

    leader: Job
    followers: List[Job] = field(default_factory=list)


class SingleFlight:
    """The in-flight table: fingerprint -> :class:`InFlightEntry`.

    Single-threaded (event-loop-only) by design, like admission.
    """

    def __init__(self):
        self._inflight: Dict[str, InFlightEntry] = {}

    def leader_for(self, fingerprint: str) -> Optional[InFlightEntry]:
        return self._inflight.get(fingerprint)

    def begin(self, fingerprint: str, job: Job) -> InFlightEntry:
        entry = InFlightEntry(leader=job)
        self._inflight[fingerprint] = entry
        return entry

    def attach(self, fingerprint: str, job: Job) -> InFlightEntry:
        entry = self._inflight[fingerprint]
        entry.followers.append(job)
        return entry

    def finish(self, fingerprint: str) -> Optional[InFlightEntry]:
        """Pop the entry; the caller completes/fails/requeues the
        followers."""
        return self._inflight.pop(fingerprint, None)

    def __len__(self) -> int:
        return len(self._inflight)


class ResultCache:
    """Registry-backed result cache with hit/miss/fill counters."""

    def __init__(self, registry: RunRegistry):
        self.registry = registry
        self.flight = SingleFlight()
        self.lookups = 0
        self.hits = 0
        self.misses = 0
        self.fills = 0

    def lookup(self, fingerprint: str) -> Optional[dict]:
        """The newest archived run record of ``fingerprint``, or None."""
        self.lookups += 1
        record = self.registry.latest(fingerprint)
        if record is None:
            self.misses += 1
        else:
            self.hits += 1
        return record

    def store(self, result, job: Job, backend: str = "",
              extra: Optional[dict] = None) -> dict:
        """Archive one executed job's result (the cache fill); returns
        the archived record as it will be served to future hits."""
        path = self.registry.archive(
            result, name=job.name or job.tenant, backend=backend,
            config=job.config, extra=extra)
        self.fills += 1
        return self.registry.load(path.parent.name)

    def stats(self) -> dict:
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "fills": self.fills,
            "in_flight": len(self.flight),
        }
