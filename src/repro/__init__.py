"""FireAxe reproduction: partitioned FPGA-accelerated RTL simulation.

Reimplements the systems from *FireAxe: Partitioned FPGA-Accelerated
Simulation of Large-Scale RTL Designs* (ISCA 2024) as a pure-Python
library: a FIRRTL-like circuit IR, a cycle-based RTL simulator, LI-BDN
token-level simulation, the FireRipper partitioning compiler (exact and
fast modes, NoC-partition-mode), FPGA platform/transport models, and the
microarchitectural performance models behind the paper's case studies.

Quickstart::

    from repro.firrtl import ModuleBuilder, build_circuit
    from repro.rtl import Simulator

    b = ModuleBuilder("Counter")
    out = b.output("count", 8)
    r = b.reg("r", 8)
    b.connect(r, r + 1)
    b.connect(out, r)
    sim = Simulator(build_circuit(b))
    sim.run(5)
    assert sim.peek("count") == 5
"""

__version__ = "1.0.0"

from . import errors
from .errors import (
    CombChainError,
    CombLoopError,
    CompileError,
    DeadlockError,
    IRError,
    ReproError,
    ResourceError,
    SelectionError,
    SimulationError,
    TransportError,
)

__all__ = [
    "errors",
    "__version__",
    "ReproError",
    "IRError",
    "CombLoopError",
    "SimulationError",
    "DeadlockError",
    "CompileError",
    "CombChainError",
    "SelectionError",
    "ResourceError",
    "TransportError",
]
