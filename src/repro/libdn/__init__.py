"""Latency-insensitive bounded dataflow network (LI-BDN) machinery.

This layer reproduces the decoupling FireSim's Golden Gate compiler adds in
hardware (Fig. 1 of the paper): token channels on every I/O boundary, one
finite-state machine per output channel that fires when the combinationally
connected input channels hold valid tokens, and a ``fireFSM`` that advances
the target a cycle once every input token is present and every output has
fired.  :class:`LIBDNHost` wraps one RTL :class:`~repro.rtl.Simulator`;
:class:`FAME5Host` multiplexes N copies of a module through shared channels
the way the FAME-5 transform threads duplicate modules.
"""

from .codec import INCOMPATIBLE, TokenCodec, codec_for, repack, repack_plan
from .token import Channel, ChannelSpec, Token, zeros_token
from .wrapper import LIBDNHost
from .fame5 import FAME5Host

__all__ = [
    "Channel",
    "ChannelSpec",
    "Token",
    "TokenCodec",
    "codec_for",
    "repack",
    "repack_plan",
    "INCOMPATIBLE",
    "zeros_token",
    "LIBDNHost",
    "FAME5Host",
]
