"""Packed token codec: one Python int per channel token.

A token used to travel as a ``{port: value}`` dict, copied at every hop
(source -> channel -> outbox -> link -> channel -> poke).  The codec
derives a fixed bit layout from a :class:`ChannelSpec` — port ``i``
occupies ``width_i`` bits at the offset that is the sum of the widths
before it — and packs the whole token into a single arbitrary-precision
Python int.  Ints are immutable, so every hop after the initial encode
is a reference copy, and the serialized form on a wire is just the
fixed-width byte string of the word (``nbytes`` per token).

This is the software analogue of what the paper's partition interfaces
do in hardware: a channel *is* its concatenated port bits, and peers
with a different port naming/order re-pack by bit moves
(:func:`repack_plan` / :func:`repack`), not by dict rebuilding.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, TYPE_CHECKING

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from .token import ChannelSpec, Token

#: One bit-move of a repack: (src_offset, mask, dst_offset).
Move = Tuple[int, int, int]

#: Sentinel plan for peers whose layouts cannot be repacked bit-wise
#: (a destination port the source does not feed); callers fall back to
#: the dict path, which reports the missing ports exactly as before.
INCOMPATIBLE = object()


class TokenCodec:
    """Bit layout of one :class:`ChannelSpec`: encode/decode/peek."""

    __slots__ = ("spec", "fields", "width", "nbytes")

    def __init__(self, spec: "ChannelSpec"):
        fields = []
        offset = 0
        for port, width in spec.ports:
            fields.append((port, offset, (1 << width) - 1))
            offset += width
        self.spec = spec
        #: ``(port, offset, mask)`` per port, in spec order.
        self.fields: Tuple[Tuple[str, int, int], ...] = tuple(fields)
        self.width = offset
        #: serialized size of one token (at least one byte so zero-width
        #: channels still occupy a frame slot)
        self.nbytes = max(1, (offset + 7) // 8)

    def encode(self, token: "Token") -> int:
        """Pack a dict token into a word; values are masked to their
        port width, extra keys are ignored, missing ports raise."""
        word = 0
        try:
            for port, offset, mask in self.fields:
                word |= (token[port] & mask) << offset
        except KeyError:
            missing = sorted(p for p, _, _ in self.fields if p not in token)
            raise SimulationError(
                f"channel {self.spec.name!r}: token missing ports {missing}"
            )
        return word

    def decode(self, word: int) -> "Token":
        """Unpack a word into a fresh ``{port: value}`` dict."""
        return {port: (word >> offset) & mask
                for port, offset, mask in self.fields}

    def __repr__(self) -> str:
        return f"TokenCodec({self.spec.name!r}, width={self.width})"


#: Codecs are immutable and derived purely from the (frozen, hashable)
#: spec, so every channel built from the same spec shares one instance.
_CODECS: Dict[object, TokenCodec] = {}


def codec_for(spec: "ChannelSpec") -> TokenCodec:
    codec = _CODECS.get(spec)
    if codec is None:
        codec = _CODECS[spec] = TokenCodec(spec)
    return codec


def repack_plan(src: TokenCodec, dst: TokenCodec,
                rename: Optional[Dict[str, str]] = None):
    """Compile the bit moves that translate a ``src``-layout word into a
    ``dst``-layout word, applying the link's port ``rename`` map.

    Returns ``None`` when the layouts coincide (the common case: peers
    declare the same ports in the same order), a tuple of
    :data:`Move` entries otherwise, or :data:`INCOMPATIBLE` when some
    destination port would be left unfed (the caller's dict fallback
    then raises the same missing-port error the unpacked path did).
    """
    rename = rename or {}
    dst_fields = {port: (offset, mask) for port, offset, mask in dst.fields}
    moves = []
    fed = set()
    for port, offset, mask in src.fields:
        target = rename.get(port, port)
        if target not in dst_fields:
            continue  # mirrors map_token: unknown keys are dropped
        d_offset, d_mask = dst_fields[target]
        moves.append((offset, mask & d_mask, d_offset))
        fed.add(target)
    if len(fed) != len(dst_fields):
        return INCOMPATIBLE
    # identity iff every src field maps to the same offset with its full
    # mask: the word can then be forwarded untouched (src bits beyond
    # the dst width cannot exist — the word is bounded by src.width)
    if (len(moves) == len(src.fields) == len(dst.fields)
            and all(s_off == d_off and mv_mask == s_mask
                    for (s_off, mv_mask, d_off), (_, _, s_mask)
                    in zip(moves, src.fields))):
        return None  # identity: forward the word untouched
    return tuple(moves)


def repack(word: int, plan) -> int:
    """Apply a :func:`repack_plan` (``None`` means identity)."""
    if plan is None:
        return word
    out = 0
    for s_off, mask, d_off in plan:
        out |= ((word >> s_off) & mask) << d_off
    return out
