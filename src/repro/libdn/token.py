"""Tokens and latency-insensitive channels.

A *token* carries one target cycle's worth of values for every port mapped
to a channel.  Channels are unbounded FIFOs by default (the bounded-ness of
real LI-BDNs matters for host buffer sizing, which the platform layer
models separately); a capacity can be set to study backpressure.

Internally a channel queue holds *packed words* — one Python int per
token, laid out by the spec's :class:`~repro.libdn.codec.TokenCodec` —
so moving a token is a reference copy, not a dict copy.  The dict API
(:meth:`Channel.put` / :meth:`Channel.head` / :meth:`Channel.get`)
encodes/decodes at the boundary; hot paths use the ``*_word`` variants.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, FrozenSet, Optional, Sequence, Tuple

from ..errors import SimulationError
from .codec import TokenCodec, codec_for

#: One target cycle's values for a channel: port name -> value.
Token = Dict[str, int]


@dataclass(frozen=True)
class ChannelSpec:
    """Static description of an LI-BDN channel.

    Args:
        name: channel name, unique within a host.
        ports: ``(port_name, width)`` pairs aggregated into this channel.
        deps: for *output* channels, the names of the input channels that
            feed these ports combinationally (empty for source channels).
    """

    name: str
    ports: Tuple[Tuple[str, int], ...]
    deps: FrozenSet[str] = frozenset()

    @property
    def width(self) -> int:
        """Total payload width in bits (the partition-interface width the
        paper's performance sweeps vary)."""
        return sum(w for _, w in self.ports)

    @property
    def port_names(self) -> Tuple[str, ...]:
        return tuple(n for n, _ in self.ports)

    @staticmethod
    def make(name: str, ports: Sequence[Tuple[str, int]],
             deps: Sequence[str] = ()) -> "ChannelSpec":
        return ChannelSpec(name, tuple(ports), frozenset(deps))


def zeros_token(spec: ChannelSpec) -> Token:
    """An all-zero token for ``spec`` (used for fast-mode seed tokens)."""
    return {name: 0 for name in spec.port_names}


class Channel:
    """FIFO of packed token words for one :class:`ChannelSpec`."""

    __slots__ = ("spec", "codec", "capacity", "queue", "total_enqueued")

    def __init__(self, spec: ChannelSpec, capacity: Optional[int] = None):
        self.spec = spec
        self.codec: TokenCodec = codec_for(spec)
        self.capacity = capacity
        self.queue: Deque[int] = deque()
        self.total_enqueued = 0

    @property
    def name(self) -> str:
        return self.spec.name

    def can_put(self) -> bool:
        return self.capacity is None or len(self.queue) < self.capacity

    def put(self, token: Token) -> None:
        if not self.can_put():
            raise SimulationError(
                f"channel {self.name!r} overflow (capacity {self.capacity})"
            )
        self.queue.append(self.codec.encode(token))
        self.total_enqueued += 1

    def put_word(self, word: int) -> None:
        if self.capacity is not None and len(self.queue) >= self.capacity:
            raise SimulationError(
                f"channel {self.name!r} overflow (capacity {self.capacity})"
            )
        self.queue.append(word)
        self.total_enqueued += 1

    def has_token(self) -> bool:
        return bool(self.queue)

    def head(self) -> Token:
        if not self.queue:
            raise SimulationError(f"channel {self.name!r} is empty")
        return self.codec.decode(self.queue[0])

    def head_word(self) -> int:
        if not self.queue:
            raise SimulationError(f"channel {self.name!r} is empty")
        return self.queue[0]

    def get(self) -> Token:
        if not self.queue:
            raise SimulationError(f"channel {self.name!r} is empty")
        return self.codec.decode(self.queue.popleft())

    def get_word(self) -> int:
        if not self.queue:
            raise SimulationError(f"channel {self.name!r} is empty")
        return self.queue.popleft()

    def __len__(self) -> int:
        return len(self.queue)

    def __repr__(self) -> str:
        return f"Channel({self.name!r}, depth={len(self.queue)})"
