"""FAME-5 style multithreaded LI-BDN host.

FAME-5 threads N duplicate module instances through shared combinational
logic: sequential state is replicated N times and a scheduler picks which
thread advances each host cycle.  Functionally each thread is an
independent simulation of the module; the resource sharing shows up in the
platform layer's LUT estimates and the timing shows up in the harness
(advancing all N threads one target cycle costs N host cycles — the key to
amortizing inter-FPGA latency, Sec. VI-B).

:class:`FAME5Host` presents the same duck-typed interface as
:class:`~repro.libdn.wrapper.LIBDNHost`; its channels are the per-thread
channels of the wrapped module, namespaced ``t<i>:<channel>``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..errors import SimulationError
from ..rtl.engine import Simulator
from .token import ChannelSpec, Token
from .wrapper import LIBDNHost


class FAME5Host:
    """N threaded copies of one module behind namespaced channels."""

    def __init__(self, sims: Sequence[Simulator],
                 in_specs: Sequence[ChannelSpec],
                 out_specs: Sequence[ChannelSpec],
                 name: str = "fame5"):
        if not sims:
            raise SimulationError("FAME5Host needs at least one thread")
        self.name = name
        self.threads: List[LIBDNHost] = [
            LIBDNHost(sim, in_specs, out_specs, name=f"{name}.t{i}")
            for i, sim in enumerate(sims)
        ]

    @classmethod
    def from_hosts(cls, hosts: Sequence[LIBDNHost],
                   name: str = "fame5") -> "FAME5Host":
        """Thread pre-built LI-BDN hosts (they may differ in channel port
        naming, e.g. per-instance punched names, but must be instances of
        the same underlying module for the FAME-5 resource sharing to be
        meaningful)."""
        if not hosts:
            raise SimulationError("FAME5Host needs at least one thread")
        obj = cls.__new__(cls)
        obj.name = name
        obj.threads = list(hosts)
        return obj

    @property
    def n_threads(self) -> int:
        return len(self.threads)

    @property
    def cycles_per_target(self) -> int:
        """Host cycles needed to advance every thread one target cycle."""
        return len(self.threads)

    @property
    def target_cycle(self) -> int:
        """Target cycle of the slowest thread (the simulation frontier)."""
        return min(t.target_cycle for t in self.threads)

    # -- channel namespacing ---------------------------------------------------

    @staticmethod
    def _split(channel: str) -> Tuple[int, str]:
        thread_part, _, base = channel.partition(":")
        if not base or not thread_part.startswith("t"):
            raise SimulationError(
                f"FAME5 channel names look like 't3:chan', got {channel!r}"
            )
        return int(thread_part[1:]), base

    def channel_names(self) -> List[str]:
        names = []
        for i, t in enumerate(self.threads):
            names.extend(f"t{i}:{c}" for c in t.in_channels)
            names.extend(f"t{i}:{c}" for c in t.out_channels)
        return names

    def deliver(self, channel: str, token: Token) -> None:
        thread, base = self._split(channel)
        self.threads[thread].deliver(base, token)

    def deliver_word(self, channel: str, word: int) -> None:
        thread, base = self._split(channel)
        self.threads[thread].deliver_word(base, word)

    def seed_inputs(self) -> None:
        for t in self.threads:
            t.seed_inputs()

    def drain_outbox(self) -> List[Tuple[str, Token]]:
        out: List[Tuple[str, Token]] = []
        for i, t in enumerate(self.threads):
            out.extend((f"t{i}:{name}", token)
                       for name, token in t.drain_outbox())
        return out

    def drain_outbox_words(self) -> List[Tuple[str, int]]:
        out: List[Tuple[str, int]] = []
        for i, t in enumerate(self.threads):
            out.extend((f"t{i}:{name}", word)
                       for name, word in t.drain_outbox_words())
        return out

    def step_bindings(self) -> List[dict]:
        """Per-thread fast-path bindings for the compiled step plane
        (see :meth:`~repro.libdn.wrapper.LIBDNHost.step_bindings`).

        The harness schedules FAME-5 threads as individual units, so the
        step generator binds each thread separately; this aggregate view
        exists for tooling that inspects a host as a whole."""
        return [t.step_bindings() for t in self.threads]

    # -- observability ---------------------------------------------------------

    def attach_tracer(self, tracer, clock=None) -> None:
        """Install a trace sink on every thread (see
        :meth:`~repro.libdn.wrapper.LIBDNHost.attach_tracer`)."""
        for t in self.threads:
            t.attach_tracer(tracer, clock)

    def channel_state(self) -> dict:
        """Per-thread channel snapshots, keyed ``t<i>`` (see
        :meth:`~repro.libdn.wrapper.LIBDNHost.channel_state`)."""
        return {
            "threads": {
                f"t{i}": t.channel_state()
                for i, t in enumerate(self.threads)
            }
        }

    # -- scheduling ----------------------------------------------------------------

    def host_step(self) -> bool:
        """Round-robin scheduler: every thread fires and advances if able."""
        progress = False
        for t in self.threads:
            progress |= t.host_step()
        return progress

    # -- checkpointing ---------------------------------------------------------

    def state_dict(self) -> dict:
        """Capture every thread's state (see
        :meth:`~repro.libdn.wrapper.LIBDNHost.state_dict`)."""
        return {"threads": [t.state_dict() for t in self.threads]}

    def load_state_dict(self, state: dict) -> None:
        saved = state["threads"]
        if len(saved) != len(self.threads):
            raise SimulationError(
                f"{self.name}: checkpoint has {len(saved)} threads, "
                f"host has {len(self.threads)}")
        for thread, thread_state in zip(self.threads, saved):
            thread.load_state_dict(thread_state)

    def stuck_detail(self) -> str:
        return " || ".join(t.stuck_detail() for t in self.threads)
