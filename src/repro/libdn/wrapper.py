"""LI-BDN host wrapper around a cycle-level simulator.

This is the software analogue of the FAME-1 transform's added circuitry
(dotted lines in the paper's Fig. 1): per-output-channel fire FSMs plus the
``fireFSM`` that advances the target.  The firing discipline is the LI-BDN
one from Vijayaraghavan & Arvind:

* an output channel may fire once per target cycle, as soon as every input
  channel it combinationally depends on holds a valid head token;
* the target advances one cycle when every input channel has a token and
  every output channel has fired; advancing consumes the input tokens and
  re-arms the output FSMs.

Because firing pokes only the combinationally relevant inputs before
evaluating, output tokens are correct even while other inputs are still in
flight — this is exactly what lets exact-mode partitions with boundary
combinational logic make forward progress (Fig. 2b).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import SimulationError
from ..observability.tracer import NULL_TRACER, TraceEvent, Tracer
from ..rtl.engine import Simulator
from .token import Channel, ChannelSpec, Token


class LIBDNHost:
    """Wraps a :class:`~repro.rtl.Simulator` in LI-BDN channels.

    Args:
        sim: simulator whose top-level ports are exactly the channel ports.
        in_specs: input channel descriptions.
        out_specs: output channel descriptions (with comb ``deps``).
        name: host name for diagnostics.
    """

    def __init__(self, sim: Simulator, in_specs: Sequence[ChannelSpec],
                 out_specs: Sequence[ChannelSpec], name: str = "libdn"):
        self.sim = sim
        self.name = name
        self.in_channels: Dict[str, Channel] = {
            s.name: Channel(s) for s in in_specs
        }
        self.out_channels: Dict[str, Channel] = {
            s.name: Channel(s) for s in out_specs
        }
        for s in out_specs:
            unknown = s.deps - set(self.in_channels)
            if unknown:
                raise SimulationError(
                    f"{name}: output channel {s.name!r} depends on unknown "
                    f"input channels {sorted(unknown)}"
                )
        self._fired: Dict[str, bool] = {s.name: False for s in out_specs}
        #: packed words produced this host step, drained by the harness
        self.outbox: List[Tuple[str, int]] = []
        self.target_cycle = 0
        #: trace sink for fire/advance events (null by default); the
        #: owning harness installs its tracer plus a clock reading the
        #: partition's timing cursor
        self.tracer: Tracer = NULL_TRACER
        self.trace_clock: Callable[[], float] = lambda: 0.0
        self._validate_ports()
        # -- precompiled token plans (the specs are frozen, so the bit
        # layouts and dependency checks never change after construction)
        # fire plan, one entry per output channel in deterministic
        # (sorted) fire order: the dep channels to check/poke with their
        # unpack fields, and the pack fields that build the out word.
        self._fire_plans = tuple(
            (name,
             self.out_channels[name],
             tuple((self.in_channels[d], self.in_channels[d].codec.fields)
                   for d in sorted(self.out_channels[name].spec.deps)),
             self.out_channels[name].codec.fields)
            for name in sorted(self.out_channels)
        )
        # advance plan: every input channel (in spec order) with its
        # unpack fields, every output channel for the re-arm sweep.
        self._in_plans = tuple(
            (ch, ch.codec.fields) for ch in self.in_channels.values()
        )
        self._out_channel_list = tuple(self.out_channels.values())

    def step_bindings(self) -> dict:
        """Stable fast-path surface for the compiled step plane
        (:mod:`repro.harness.stepjit`).

        The generated per-partition step functions bypass
        :meth:`try_fire_outputs` / :meth:`advance` and inline their
        bodies against the objects returned here.  Everything in the
        dict is *the* live object (not a copy): the precompiled fire
        plans, the fired-flag dict, the RTL engine's signal environment
        and compiled comb/tick functions.  The contract is that these
        objects are mutated in place for the lifetime of one compiled
        schedule — any wholesale replacement (a checkpoint restore, an
        engine reset) must invalidate the schedule so the generator
        re-binds.

        ``comb``/``tick`` are ``None`` when the RTL engine runs
        interpreted; the generator refuses such units.
        """
        sim = self.sim
        compiled = getattr(sim, "compiled", False)
        return {
            "rtl": sim,
            "env": sim.env,
            "mems": sim.mem_state,
            "comb": sim._comb_fn if compiled else None,
            "tick": sim._tick_fn if compiled else None,
            "fired": self._fired,
            "fire_plans": self._fire_plans,
            "in_plans": self._in_plans,
            "out_channels": self._out_channel_list,
        }

    def attach_tracer(self, tracer: Tracer,
                      clock: Optional[Callable[[], float]] = None) -> None:
        """Install a trace sink (and optionally a host-time clock) for
        this unit's ``channel_fire``/``advance`` events."""
        self.tracer = tracer
        if clock is not None:
            self.trace_clock = clock

    def _validate_ports(self) -> None:
        sim_inputs = dict(self.sim.elab.inputs)
        sim_outputs = dict(self.sim.elab.outputs)
        for ch in self.in_channels.values():
            for port, width in ch.spec.ports:
                if sim_inputs.get(port) != width:
                    raise SimulationError(
                        f"{self.name}: input channel {ch.name!r} port "
                        f"{port!r} does not match a {width}-bit sim input"
                    )
        for ch in self.out_channels.values():
            for port, width in ch.spec.ports:
                if sim_outputs.get(port) != width:
                    raise SimulationError(
                        f"{self.name}: output channel {ch.name!r} port "
                        f"{port!r} does not match a {width}-bit sim output"
                    )

    # -- token plumbing ------------------------------------------------------

    def deliver(self, channel: str, token: Token) -> None:
        """Enqueue a token arriving on an input channel."""
        self.in_channels[channel].put(token)

    def deliver_word(self, channel: str, word: int) -> None:
        """Enqueue an already-packed token word (harness hot path)."""
        self.in_channels[channel].put_word(word)

    def seed_inputs(self) -> None:
        """Prime every input channel with one all-zero token (fast-mode
        initialization; injects one cycle of latency at the boundary)."""
        for ch in self.in_channels.values():
            ch.put_word(0)

    def drain_outbox(self) -> List[Tuple[str, Token]]:
        """Drain produced tokens as dicts (compatibility surface; the
        harness drains :meth:`drain_outbox_words` instead)."""
        out, self.outbox = self.outbox, []
        return [(name, self.out_channels[name].codec.decode(word))
                for name, word in out]

    def drain_outbox_words(self) -> List[Tuple[str, int]]:
        out, self.outbox = self.outbox, []
        return out

    # -- LI-BDN state machines -------------------------------------------------

    def try_fire_outputs(self) -> List[str]:
        """Fire every armed output channel whose comb-dependent inputs hold
        tokens; returns the names fired (in deterministic order)."""
        fired_now: List[str] = []
        fired = self._fired
        sim = self.sim
        for name, out_ch, dep_plans, pack_fields in self._fire_plans:
            if fired[name]:
                continue
            ready = True
            for dep_ch, _ in dep_plans:
                if not dep_ch.queue:
                    ready = False
                    break
            if not ready:
                continue
            # poke only the combinationally relevant inputs; other input
            # ports keep stale values, which cannot affect these outputs.
            # (values in the queue are already masked to the port width,
            # so writing env directly matches what poke() would store)
            env = sim.env
            for dep_ch, fields in dep_plans:
                head = dep_ch.queue[0]
                for port, offset, mask in fields:
                    env[port] = (head >> offset) & mask
            sim.eval()
            word = 0
            for port, offset, _ in pack_fields:
                word |= env[port] << offset
            out_ch.put_word(word)
            self.outbox.append((name, word))
            fired[name] = True
            fired_now.append(name)
            if self.tracer.enabled:
                self.tracer.emit(TraceEvent(
                    "channel_fire", ts_ns=self.trace_clock(),
                    part=self.name, scope=name,
                    args={"cycle": self.target_cycle}))
        return fired_now

    def can_advance(self) -> bool:
        """fireFSM condition: all inputs present, all outputs fired."""
        return (all(ch.has_token() for ch in self.in_channels.values())
                and all(self._fired.values()))

    def advance(self) -> None:
        """Consume one token per input channel, step the target a cycle,
        and re-arm the output FSMs."""
        if not self.can_advance():
            raise SimulationError(f"{self.name}: advance() while not ready")
        sim = self.sim
        env = sim.env
        for ch, fields in self._in_plans:
            word = ch.queue.popleft()
            for port, offset, mask in fields:
                env[port] = (word >> offset) & mask
        sim.eval()
        sim.tick()
        for name in self._fired:
            self._fired[name] = False
        # tokens the fire FSMs enqueued for bookkeeping are consumed by the
        # harness via the outbox; drop our local copies.
        for ch in self._out_channel_list:
            if ch.queue:
                ch.queue.popleft()
        self.target_cycle += 1
        if self.tracer.enabled:
            self.tracer.emit(TraceEvent(
                "advance", ts_ns=self.trace_clock(), part=self.name,
                args={"cycle": self.target_cycle}))

    def host_step(self) -> bool:
        """One host iteration: fire what can fire, advance if possible.
        Returns True when any progress was made."""
        progress = bool(self.try_fire_outputs())
        if self.can_advance():
            self.advance()
            progress = True
        return progress

    # -- checkpointing ---------------------------------------------------------

    def state_dict(self) -> dict:
        """Capture the full host state (simulator, channel queues, fire
        FSMs, outbox) as a JSON-serializable dict.  Together with the
        harness-level link/timing state this is everything needed to
        resume a partitioned run bit-identically."""
        def channels(table: Dict[str, Channel]) -> dict:
            return {
                name: {
                    "tokens": [ch.codec.decode(w) for w in ch.queue],
                    "total_enqueued": ch.total_enqueued,
                }
                for name, ch in table.items()
            }
        return {
            "target_cycle": self.target_cycle,
            "sim": self.sim.snapshot(),
            "in_channels": channels(self.in_channels),
            "out_channels": channels(self.out_channels),
            "fired": dict(self._fired),
            "outbox": [[name, self.out_channels[name].codec.decode(word)]
                       for name, word in self.outbox],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` capture onto a structurally
        identical host (same channels and underlying module)."""
        for attr, table in (("in_channels", self.in_channels),
                            ("out_channels", self.out_channels)):
            saved = state[attr]
            if set(saved) != set(table):
                raise SimulationError(
                    f"{self.name}: checkpoint {attr} {sorted(saved)} do "
                    f"not match this host's {sorted(table)}")
            for name, ch in table.items():
                ch.queue.clear()
                ch.queue.extend(ch.codec.encode(t)
                                for t in saved[name]["tokens"])
                ch.total_enqueued = saved[name]["total_enqueued"]
        self.sim.restore(state["sim"])
        # mutate the fired dict in place: the compiled step plane binds
        # this exact object (step_bindings), and a restore between runs
        # must not leave those bindings pointing at a dead dict
        self._fired.clear()
        self._fired.update(state["fired"])
        self.outbox = [
            (name, self.out_channels[name].codec.encode(token))
            for name, token in state["outbox"]
        ]
        self.target_cycle = state["target_cycle"]

    def channel_state(self) -> dict:
        """Structured channel snapshot for postmortems: per input the
        pending-token depth, per output the fired flag plus the input
        channels it still waits on."""
        return {
            "target_cycle": self.target_cycle,
            "inputs": {
                name: {"pending": len(ch.queue)}
                for name, ch in sorted(self.in_channels.items())
            },
            "outputs": {
                name: {
                    "fired": self._fired[name],
                    "waiting_on": sorted(
                        d for d in ch.spec.deps
                        if not self.in_channels[d].has_token()
                    ) if not self._fired[name] else [],
                }
                for name, ch in sorted(self.out_channels.items())
            },
        }

    def stuck_detail(self) -> str:
        """Describe why the host cannot progress (for deadlock reports)."""
        waiting = []
        for name in sorted(self.out_channels):
            if self._fired[name]:
                continue
            spec = self.out_channels[name].spec
            missing = [d for d in sorted(spec.deps)
                       if not self.in_channels[d].has_token()]
            if missing:
                waiting.append(f"{name} waits on {missing}")
        empty = [n for n, ch in sorted(self.in_channels.items())
                 if not ch.has_token()]
        return (f"{self.name}@cycle{self.target_cycle}: "
                f"outputs [{'; '.join(waiting)}] | empty inputs {empty}")
