"""Command-line front end: ``python -m repro``.

Subcommands mirror the FireSim/FireAxe manager workflow at miniature
scale, operating on circuit files in the textual IR format:

* ``report``    — compile a partition spec and print FireRipper's
  interface/resource/performance feedback,
* ``partition`` — write the per-FPGA partition circuits to files,
* ``simulate``  — run the partitioned co-simulation and report the
  achieved rate (optionally until an output signal asserts),
* ``autopartition`` — run the boundary search and print the resulting
  spec,
* ``experiments`` — alias for ``python -m repro.experiments``.

Example::

    python -m repro report design.fir --extract right --mode exact
    python -m repro simulate design.fir --extract right --cycles 200 \
        --transport pcie
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .errors import ReproError
from .fireripper import (
    EXACT,
    FireRipper,
    PartitionGroup,
    PartitionSpec,
    auto_partition,
)
from .firrtl import parse_circuit, print_circuit
from .platform import (
    ETHERNET_100G,
    HOST_PCIE,
    PCIE_P2P,
    QSFP_AURORA,
    XILINX_U250,
)

TRANSPORTS = {
    "qsfp": QSFP_AURORA,
    "pcie": PCIE_P2P,
    "host-pcie": HOST_PCIE,
    "ethernet": ETHERNET_100G,
}


def _load(path: str):
    return parse_circuit(Path(path).read_text())


def _spec(args) -> PartitionSpec:
    groups = []
    for i, group in enumerate(args.extract):
        paths = group.split(",")
        groups.append(PartitionGroup.make(f"fpga{i}", paths))
    return PartitionSpec(mode=args.mode, groups=groups)


def _add_common(sub):
    sub.add_argument("circuit", help="circuit file in the textual IR")
    sub.add_argument("--extract", action="append", required=True,
                     metavar="PATHS",
                     help="comma-separated instance paths for one FPGA "
                          "(repeatable)")
    sub.add_argument("--mode", choices=["exact", "fast"], default=EXACT)


def cmd_report(args) -> int:
    circuit = _load(args.circuit)
    design = FireRipper(_spec(args)).compile(
        circuit, profile=XILINX_U250,
        transport=TRANSPORTS[args.transport],
        host_freq_mhz=args.freq)
    print(design.report.to_text())
    return 0


def cmd_partition(args) -> int:
    circuit = _load(args.circuit)
    design = FireRipper(_spec(args)).compile(circuit)
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    for name, part in design.partitions.items():
        path = out_dir / f"{name}.fir"
        path.write_text(print_circuit(part))
        print(f"wrote {path}")
    return 0


def cmd_simulate(args) -> int:
    circuit = _load(args.circuit)
    design = FireRipper(_spec(args)).compile(circuit)
    sim = design.build_simulation(
        TRANSPORTS[args.transport], host_freq_mhz=args.freq,
        record_outputs=True)

    stop = None
    if args.until:
        signal = args.until

        def stop(s):  # noqa: F811
            log = s.output_log.get(("base", "io_out"), [])
            return bool(log) and log[-1].get(signal, 0) == 1

    result = sim.run(args.cycles, stop=stop)
    print(f"simulated {result.target_cycles} target cycles "
          f"in {result.wall_ns / 1e3:.1f} us of host time")
    print(f"rate: {result.rate_mhz:.3f} MHz over "
          f"{TRANSPORTS[args.transport].name}")
    print(f"tokens transferred: {result.tokens_transferred}")
    log = sim.output_log.get(("base", "io_out"), [])
    if log:
        print(f"final outputs: {log[-1]}")
    return 0


def cmd_autopartition(args) -> int:
    circuit = _load(args.circuit)
    result = auto_partition(circuit, n_fpgas=args.fpgas, mode=args.mode,
                            keep_in_base=args.keep or [])
    print(result.to_text())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FireAxe reproduction: partition and co-simulate "
                    "RTL designs across modelled FPGAs.")
    subs = parser.add_subparsers(dest="command", required=True)

    p_report = subs.add_parser("report", help="compile + print feedback")
    _add_common(p_report)
    p_report.add_argument("--transport", choices=TRANSPORTS,
                          default="qsfp")
    p_report.add_argument("--freq", type=float, default=30.0,
                          help="bitstream frequency in MHz")
    p_report.set_defaults(fn=cmd_report)

    p_part = subs.add_parser("partition",
                             help="write per-FPGA circuit files")
    _add_common(p_part)
    p_part.add_argument("--out", default="partitions",
                        help="output directory")
    p_part.set_defaults(fn=cmd_partition)

    p_sim = subs.add_parser("simulate", help="run the co-simulation")
    _add_common(p_sim)
    p_sim.add_argument("--transport", choices=TRANSPORTS, default="qsfp")
    p_sim.add_argument("--freq", type=float, default=30.0)
    p_sim.add_argument("--cycles", type=int, default=1000)
    p_sim.add_argument("--until", metavar="SIGNAL",
                       help="stop when this base output reads 1")
    p_sim.set_defaults(fn=cmd_simulate)

    p_auto = subs.add_parser("autopartition",
                             help="search for partition boundaries")
    p_auto.add_argument("circuit")
    p_auto.add_argument("--fpgas", type=int, default=2)
    p_auto.add_argument("--mode", choices=["exact", "fast"],
                        default=EXACT)
    p_auto.add_argument("--keep", action="append", metavar="INSTANCE",
                        help="pin an instance to the base partition")
    p_auto.set_defaults(fn=cmd_autopartition)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
