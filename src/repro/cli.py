"""Command-line front end: ``python -m repro``.

Subcommands mirror the FireSim/FireAxe manager workflow at miniature
scale, operating on circuit files in the textual IR format:

* ``report``    — compile a partition spec and print FireRipper's
  interface/resource/performance feedback,
* ``partition`` — write the per-FPGA partition circuits to files,
* ``simulate``  — run the partitioned co-simulation and report the
  achieved rate (optionally until an output signal asserts);
  ``--backend process`` runs each partition in its own OS worker
  process, ``process-shm``/``process-socket`` move token frames over
  shared-memory rings / sockets (results are bit-identical to the
  in-process loop under every backend),
* ``farm``      — the simulated run farm: ``farm plan`` places the
  partitions onto a declarative multi-host manifest (``--hosts``)
  minimizing the modelled cross-host cut, ``farm launch`` deploys one
  virtual-host agent per placed host and supervises the run (host
  deaths roll back and re-place onto the survivors), ``farm status``
  lists archived farm runs,
* ``reliability`` — run a supervised, fault-injected co-simulation over
  reliable links; report the rate degradation versus a fault-free run
  and verify the delivered outputs stayed bit-identical,
* ``trace``     — run with a recording tracer and export a Chrome
  trace-event JSON (load it at https://ui.perfetto.dev); the export is
  streamed record-by-record, ``--gzip`` compresses it on the way out;
  on deadlock, print the postmortem and keep the partial trace,
* ``profile``   — run and print the per-partition FMR breakdown,
  link utilization and the dominant bottleneck,
* ``autopartition`` — run the boundary search and print the resulting
  spec,
* ``experiments`` — alias for ``python -m repro.experiments``,
* ``compare``   — diff two archived runs: rate delta plus the FMR
  attribution of the change (which overhead component absorbed it),
* ``watch``     — follow an in-flight run's live status file
  (``simulate --metrics --live`` writes it, under either backend),
* ``regress``   — the regression gate: re-measure the canonical
  modelled rates against ``results/BENCH_rates.json``, validate the
  committed benchmark bounds, and judge the newest archived run
  against its trajectory; non-zero exit on any violation.

``simulate --metrics N`` samples a deterministic per-partition metric
time-series every N target cycles (identical across backends);
``--archive`` persists the run — config fingerprint, backend, headline
numbers, FMR breakdown, series — under ``results/runs/``.

Example::

    python -m repro report design.fir --extract right --mode exact
    python -m repro simulate design.fir --extract right --cycles 200 \
        --transport pcie
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from .errors import DeadlockError, ReproError
from .fireripper import (
    EXACT,
    FireRipper,
    PartitionGroup,
    PartitionSpec,
    auto_partition,
)
from .firrtl import parse_circuit, print_circuit
from .platform import XILINX_U250
from .observability import (
    RecordingTracer,
    format_profile,
    stream_chrome_trace,
)
from .reliability import (
    FaultSpec,
    RunSupervisor,
    harden_links,
    inject_faults,
)
from .service.executor import TRANSPORTS
from .telemetry import (
    LiveStatus,
    RunRegistry,
    Telemetry,
    compare_runs,
    format_comparison,
    run_gate,
)


def _load(path: str):
    return parse_circuit(Path(path).read_text())


def _spec(args) -> PartitionSpec:
    groups = []
    for i, group in enumerate(args.extract):
        paths = group.split(",")
        groups.append(PartitionGroup.make(f"fpga{i}", paths))
    return PartitionSpec(mode=args.mode, groups=groups)


def _add_common(sub):
    sub.add_argument("circuit", help="circuit file in the textual IR")
    sub.add_argument("--extract", action="append", required=True,
                     metavar="PATHS",
                     help="comma-separated instance paths for one FPGA "
                          "(repeatable)")
    sub.add_argument("--mode", choices=["exact", "fast"], default=EXACT)


def cmd_report(args) -> int:
    circuit = _load(args.circuit)
    design = FireRipper(_spec(args)).compile(
        circuit, profile=XILINX_U250,
        transport=TRANSPORTS[args.transport],
        host_freq_mhz=args.freq)
    print(design.report.to_text())
    return 0


def cmd_partition(args) -> int:
    circuit = _load(args.circuit)
    design = FireRipper(_spec(args)).compile(circuit)
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    for name, part in design.partitions.items():
        path = out_dir / f"{name}.fir"
        path.write_text(print_circuit(part))
        print(f"wrote {path}")
    return 0


def cmd_simulate(args) -> int:
    circuit = _load(args.circuit)
    design = FireRipper(_spec(args)).compile(circuit)
    telemetry = None
    if args.metrics or args.live or args.archive:
        telemetry = Telemetry(sample_every=args.metrics or 50,
                              live_path=args.live)
    sim = design.build_simulation(
        TRANSPORTS[args.transport], host_freq_mhz=args.freq,
        record_outputs=True, telemetry=telemetry)
    if args.no_jit:
        sim.stepjit = False

    stop = None
    if args.until:
        signal = args.until

        def stop(s):  # noqa: F811
            log = s.output_log.get(("base", "io_out"), [])
            return bool(log) and log[-1].get(signal, 0) == 1

    result = sim.run(args.cycles, stop=stop, backend=args.backend)
    print(f"simulated {result.target_cycles} target cycles "
          f"in {result.wall_ns / 1e3:.1f} us of host time "
          f"[{sim.last_run_backend} backend]")
    jit_report = sim.last_jit_report
    if jit_report:  # process workers compile in their own processes
        compiled = sum(1 for v in jit_report.values()
                       if v.startswith("compiled"))
        print(f"step plane: {compiled}/{len(jit_report)} partition(s) "
              f"compiled ('repro jit' explains the rest)")
    print(f"rate: {result.rate_mhz:.3f} MHz over "
          f"{TRANSPORTS[args.transport].name}")
    print(f"tokens transferred: {result.tokens_transferred}")
    log = sim.output_log.get(("base", "io_out"), [])
    if log:
        print(f"final outputs: {log[-1]}")
    if telemetry is not None:
        series = result.detail.get("telemetry", {}).get("series", {})
        points = sum(len(p) for p in series.values())
        print(f"telemetry: {points} sample point(s) across "
              f"{len(series)} partition(s), "
              f"every {telemetry.sample_every} cycles")
    if args.archive:
        registry = RunRegistry(args.runs_dir)
        config = {"circuit": args.circuit, "extract": args.extract,
                  "mode": args.mode, "transport": args.transport,
                  "freq": args.freq, "cycles": args.cycles}
        path = registry.archive(
            result, name=args.archive,
            backend=sim.last_run_backend or "inproc", config=config)
        print(f"archived run: {path}")
    return 0


def cmd_jit(args) -> int:
    from .harness.stepjit import generate_sources, stepjit_enabled

    circuit = _load(args.circuit)
    design = FireRipper(_spec(args)).compile(circuit)
    sim = design.build_simulation(
        TRANSPORTS[args.transport], host_freq_mhz=args.freq,
        record_outputs=True)
    enabled = stepjit_enabled(sim)
    print(f"step-plane JIT: {'enabled' if enabled else 'disabled'} "
          f"(REPRO_STEPJIT)")
    for name, (src, reason) in generate_sources(sim).items():
        if src is None:
            print(f"{name}: interpreted — {reason}")
            continue
        lines = len(src.splitlines())
        print(f"{name}: compiled, {lines} lines")
        if args.dump:
            print(src)
            for prefix, unit in sim.partitions[name].units:
                for kernel in getattr(unit, "_stepjit_kernels", ()) or ():
                    ksrc = getattr(kernel, "_stepjit_source", None)
                    if ksrc:
                        print(f"# kernel for {prefix}{unit.name}")
                        print(ksrc)
    return 0


def _parse_flaps(entries: List[str]) -> List[tuple]:
    flaps = []
    for entry in entries:
        try:
            start, duration = entry.split(":")
            flaps.append((float(start), float(duration)))
        except ValueError:
            raise ReproError(
                f"--flap wants START_NS:DURATION_NS, got {entry!r}")
    return flaps


def cmd_reliability(args) -> int:
    circuit = _load(args.circuit)
    design = FireRipper(_spec(args)).compile(circuit)
    fault_spec = FaultSpec(
        seed=args.seed,
        drop_rate=args.drop_rate,
        corrupt_rate=args.corrupt_rate,
        spike_rate=args.spike_rate,
        spike_ns=args.spike_ns,
        flaps=tuple(_parse_flaps(args.flap or [])))

    def build(faults=None):
        sim = design.build_simulation(
            TRANSPORTS[args.transport], host_freq_mhz=args.freq,
            record_outputs=True)
        if args.unreliable:
            if faults is not None:
                inject_faults(sim, faults)
        else:
            harden_links(sim, faults)
        return sim

    baseline = build()
    base_result = baseline.run(args.cycles)

    supervisor = RunSupervisor(
        lambda: build(fault_spec),
        checkpoint_every=args.checkpoint_every,
        checkpoint_dir=args.checkpoint_dir,
        max_rollbacks=args.max_rollbacks,
        crash_at_cycles=args.crash_at or [])
    report = supervisor.run(args.cycles)
    result = report.result

    layer = "raw (unreliable)" if args.unreliable else "reliable"
    print(f"supervised {result.target_cycles} target cycles over "
          f"{layer} {TRANSPORTS[args.transport].name} links")
    print(f"fault schedule: seed={fault_spec.seed} "
          f"drop={fault_spec.drop_rate} corrupt={fault_spec.corrupt_rate} "
          f"spike={fault_spec.spike_rate} flaps={len(fault_spec.flaps)}")
    print(f"fault-free rate: {base_result.rate_khz:.2f} kHz")
    print(f"achieved rate:   {result.rate_khz:.2f} kHz "
          f"({result.rate_hz / base_result.rate_hz * 100:.1f}% of "
          f"fault-free)")
    identical = report.output_log == baseline.output_log
    print(f"outputs bit-identical to fault-free run: "
          f"{'yes' if identical else 'NO'}")
    print(f"checkpoints: {report.checkpoints}  "
          f"rollbacks: {report.rollbacks}")
    for key, stats in (result.detail.get("reliability") or {}).items():
        print(f"  {key}: delivered={stats['delivered']} "
              f"retries={stats['retries']} "
              f"drops_recovered={stats['drops_recovered']} "
              f"crc_rejects={stats['crc_rejects']} "
              f"flap_stalls={stats['flap_stalls']}")
    for event in report.events:
        if event.kind in ("crash", "stall", "rollback"):
            print(f"  [{event.kind}@{event.cycle}] {event.note}")
    return 0 if identical or args.unreliable else 1


def _trace_job(args) -> int:
    """``repro trace --job ID``: stitch a service job's scheduler
    spans, event-log fabric events and archived partition spans into
    one Perfetto trace."""
    from .obsplane import read_events
    from .obsplane.stitch import export_job_trace
    client = _client(args)
    record = client.job(args.job)
    run_record = None
    if record.get("run_id"):
        try:
            run_record = RunRegistry(args.runs_dir).load(
                record["run_id"])
        except ReproError as exc:
            print(f"trace: no archived run record "
                  f"({exc}); partition spans omitted",
                  file=sys.stderr)
    entries = []
    if args.log:
        entries = list(read_events(
            args.log, corr=record.get("corr_id") or None))
    path, count = export_job_trace(args.out, record, run_record,
                                   entries, compress=args.gzip)
    spans = len((run_record or {}).get("obs", {})
                .get("trace_events", []))
    print(f"stitched {count} events for {args.job} "
          f"(corr={record.get('corr_id', '?')}): "
          f"{len(entries)} log entries, {spans} partition spans")
    print(f"wrote {path} (open in https://ui.perfetto.dev or "
          f"chrome://tracing)")
    return 0


def cmd_trace(args) -> int:
    if args.job:
        return _trace_job(args)
    if not args.circuit or not args.extract:
        raise ReproError("trace wants a circuit file with --extract, "
                         "or --job ID")
    circuit = _load(args.circuit)
    design = FireRipper(_spec(args)).compile(circuit)
    tracer = RecordingTracer(capacity=args.events)
    sim = design.build_simulation(
        TRANSPORTS[args.transport], host_freq_mhz=args.freq,
        record_outputs=True, tracer=tracer)
    try:
        result = sim.run(args.cycles)
    except DeadlockError as exc:
        if exc.postmortem is not None:
            print(exc.postmortem.to_text(), file=sys.stderr)
        path = stream_chrome_trace(tracer.events, args.out,
                                   compress=args.gzip)
        print(f"wrote partial trace to {path}", file=sys.stderr)
        raise
    path = stream_chrome_trace(tracer.events, args.out,
                               compress=args.gzip)
    print(f"simulated {result.target_cycles} target cycles at "
          f"{result.rate_khz:.2f} kHz over "
          f"{TRANSPORTS[args.transport].name}")
    print(f"trace: kept {len(tracer.events)} of "
          f"{tracer.total_emitted} events")
    for kind, count in sorted(tracer.counts().items()):
        print(f"  {kind:14s} {count}")
    print(f"wrote {path} (open in https://ui.perfetto.dev or "
          f"chrome://tracing)")
    return 0


def cmd_profile(args) -> int:
    circuit = _load(args.circuit)
    design = FireRipper(_spec(args)).compile(circuit)
    sim = design.build_simulation(
        TRANSPORTS[args.transport], host_freq_mhz=args.freq)
    result = sim.run(args.cycles)
    print(f"transport: {TRANSPORTS[args.transport].name}")
    print(format_profile(result))
    return 0


def cmd_experiments(args) -> int:
    from .experiments.runner import main as experiments_main
    return experiments_main(args.rest)


def cmd_compare(args) -> int:
    registry = RunRegistry(args.runs_dir)
    comparison = compare_runs(registry.load(args.run_a),
                              registry.load(args.run_b))
    print(format_comparison(comparison))
    return 0


def _service_config(args):
    from .service import ServiceConfig, TenantQuota
    quotas = {}
    for entry in args.quota or []:
        tenant, _, spec = entry.partition(":")
        if not tenant or not spec:
            raise ReproError(
                f"--quota wants TENANT:QUEUED:ACTIVE, got {entry!r}")
        quotas[tenant] = TenantQuota.parse(spec)
    default = TenantQuota.parse(args.default_quota) \
        if args.default_quota else TenantQuota()
    return ServiceConfig(
        workers=args.workers, runs_dir=args.runs_dir,
        live_dir=args.live_dir, metrics_every=args.metrics,
        default_quota=default, quotas=quotas,
        event_log=args.event_log, trace_events=args.trace_events)


def cmd_serve(args) -> int:
    import asyncio

    from .service import ServiceServer, SimulationService

    config = _service_config(args)

    async def amain() -> None:
        service = SimulationService(config)
        await service.start()
        server = ServiceServer(service, host=args.host,
                               port=args.port)
        await server.start()
        print(f"repro service on {args.host}:{server.port} — "
              f"{max(1, config.workers)} worker(s), "
              f"cache at {service.registry.root}", flush=True)
        try:
            await asyncio.Event().wait()
        finally:
            await server.stop()
            await service.shutdown()

    try:
        asyncio.run(amain())
    except KeyboardInterrupt:
        print("service stopped", file=sys.stderr)
    return 0


def _client(args):
    from .service import ServiceClient, parse_server
    host, port = parse_server(args.server)
    return ServiceClient(host, port)


def _print_job(record: dict) -> None:
    line = (f"{record['job_id']} [{record['state']}] "
            f"tenant={record['tenant']} fp={record['fingerprint']}")
    if record.get("source"):
        line += f" source={record['source']}"
    if record.get("corr_id"):
        line += f" corr={record['corr_id']}"
    print(line)
    phases = [(label, record.get(key)) for label, key in
              (("queue", "queue_wait_s"), ("cache", "cache_lookup_s"),
               ("exec", "execution_s"))]
    shown = [f"{label} {value * 1e3:.1f}ms"
             for label, value in phases if value is not None]
    if shown:
        print("  " + "  ".join(shown))
    result = record.get("result")
    if result and result.get("run_id"):
        print(f"  run {result['run_id']}: "
              f"{result['target_cycles']} cycles at "
              f"{result.get('rate_hz', 0.0) / 1e3:.2f} kHz "
              f"[{result.get('backend', '?')}]")
    elif result and result.get("partial"):
        print(f"  cancelled after {result['target_cycles']} cycles")
    if record.get("error"):
        print(f"  error: {record['error']}")


def _submit_config(args) -> dict:
    if args.config:
        import json
        try:
            return json.loads(Path(args.config).read_text())
        except (OSError, ValueError) as exc:
            raise ReproError(f"cannot load --config "
                             f"{args.config!r}: {exc}")
    if args.experiment:
        return {"kind": "experiment", "experiment": args.experiment}
    if not args.circuit:
        raise ReproError("submit wants a circuit file, "
                         "--experiment NAME, or --config FILE")
    config = {"kind": "simulate", "extract": args.extract or [],
              "mode": args.mode, "transport": args.transport,
              "freq": args.freq, "cycles": args.cycles,
              "backend": args.backend}
    if args.inline:
        # ship the IR itself so the service need not share a
        # filesystem with the submitter
        config["circuit_text"] = Path(args.circuit).read_text()
    else:
        config["circuit"] = args.circuit
    return config


def cmd_submit(args) -> int:
    from .service import TERMINAL
    client = _client(args)
    record = client.submit(_submit_config(args), tenant=args.tenant,
                           priority=args.priority, name=args.name)
    _print_job(record)
    if not args.wait:
        return 0 if record["state"] != "failed" else 1
    if record["state"] not in TERMINAL:
        record = client.wait(record["job_id"], timeout=args.timeout)
        if record.get("timed_out"):
            print(f"wait: timed out after {args.timeout:g}s "
                  f"(job still {record['state']})", file=sys.stderr)
            return 1
        _print_job(record)
    return 0 if record["state"] == "done" else 1


def cmd_jobs(args) -> int:
    client = _client(args)
    records = client.jobs(tenant=args.tenant)
    if not records:
        print("no jobs")
        return 0
    for record in records:
        _print_job(record)
    stats = client.stats()["counters"]
    print(f"{len(records)} job(s)  "
          f"executions={stats['executions']} "
          f"cache_hits={stats['cache_hits']} "
          f"coalesced={stats['coalesced']}")
    return 0


def cmd_cancel(args) -> int:
    client = _client(args)
    record = client.cancel(args.job_id)
    _print_job(record)
    return 0


def cmd_tail(args) -> int:
    """Print (or follow) the observability event log, optionally
    narrowed to one correlation id, tenant, or event kind."""
    from .obsplane import follow_events, format_event, read_events
    kinds = args.kind or None
    if args.follow:
        try:
            for entry in follow_events(args.log, corr=args.corr,
                                       tenant=args.tenant, kinds=kinds,
                                       timeout=args.timeout):
                print(format_event(entry), flush=True)
        except KeyboardInterrupt:
            pass
        return 0
    count = 0
    for entry in read_events(args.log, corr=args.corr,
                             tenant=args.tenant, kinds=kinds):
        print(format_event(entry))
        count += 1
    if count == 0:
        print("no matching events", file=sys.stderr)
    return 0


def _print_top(stats: dict) -> None:
    counters = stats.get("counters", {})
    metrics = stats.get("metrics", {})
    gauges = metrics.get("gauges", {})
    submitted = counters.get("submitted", 0)
    hits = counters.get("cache_hits", 0)
    rate = hits / submitted * 100.0 if submitted else 0.0
    print(f"workers={gauges.get('workers', 0)} "
          f"active={gauges.get('active_jobs', 0)} "
          f"submitted={submitted} "
          f"executions={counters.get('executions', 0)} "
          f"cache_hits={hits} ({rate:.1f}%) "
          f"coalesced={counters.get('coalesced', 0)} "
          f"rejected={counters.get('rejected', 0)}")
    depths = gauges.get("queue_depth", {})
    if depths:
        queued = "  ".join(f"{tenant}={depth}"
                           for tenant, depth in sorted(depths.items()))
        print(f"queue depth: {queued}")
    latency = metrics.get("latency", {})
    rows = sorted((tenant, phase, snap)
                  for phase, per_tenant in latency.items()
                  for tenant, snap in per_tenant.items())
    if rows:
        print(f"{'tenant':<12} {'phase':<14} {'count':>6} "
              f"{'p50 ms':>9} {'p95 ms':>9} {'p99 ms':>9}")
    for tenant, phase, snap in rows:
        print(f"{tenant:<12} {phase:<14} {snap['count']:>6} "
              f"{snap['p50'] * 1e3:>9.2f} {snap['p95'] * 1e3:>9.2f} "
              f"{snap['p99'] * 1e3:>9.2f}")


def cmd_top(args) -> int:
    """Live service overview: queue depths, per-tenant latency
    quantiles, and cache-hit rate.  ``--once`` prints one snapshot."""
    client = _client(args)
    try:
        while True:
            stats = client.stats()
            _print_top(stats)
            if args.once:
                return 0
            time.sleep(args.interval)
            print()
    except KeyboardInterrupt:
        return 0


def cmd_runs_list(args) -> int:
    registry = RunRegistry(args.runs_dir)
    entries = registry.index()
    if args.fingerprint:
        entries = {run_id: entry
                   for run_id, entry in entries.items()
                   if entry.get("fingerprint") == args.fingerprint}
    if not entries:
        print(f"no archived runs under {registry.root}")
        return 0
    for run_id in sorted(entries,
                         key=lambda r: entries[r].get("created", "")):
        entry = entries[run_id]
        created = entry.get("created")
        when = time.strftime("%Y-%m-%d %H:%M",
                             time.localtime(created)) \
            if isinstance(created, (int, float)) else "?"
        print(f"{run_id}: fp={entry.get('fingerprint', '?')} "
              f"{entry.get('target_cycles', 0)} cycles  "
              f"rate {entry.get('rate_hz', 0.0) / 1e3:.2f} kHz  "
              f"{entry.get('bytes', 0)} bytes  {when}")
    print(f"{len(entries)} run(s), "
          f"{registry.total_bytes()} bytes total")
    return 0


def cmd_runs_gc(args) -> int:
    registry = RunRegistry(args.runs_dir)
    max_age_s = args.max_age_days * 86400.0 \
        if args.max_age_days is not None else None
    pruned = registry.gc(max_age_s=max_age_s, keep=args.keep,
                         max_bytes=args.max_bytes,
                         dry_run=args.dry_run)
    verb = "would prune" if args.dry_run else "pruned"
    for run_id in pruned:
        print(f"{verb} {run_id}")
    kept = len(registry.index())
    print(f"{verb} {len(pruned)} run(s); {kept} kept, "
          f"{registry.total_bytes()} bytes")
    return 0


def _watch_job(args) -> int:
    """Follow one service job: its live-status file while it runs,
    falling back to state polling, until it is terminal."""
    from .service import TERMINAL
    client = _client(args)
    deadline = time.monotonic() + args.timeout
    last_updated = None
    last_state = None
    while True:
        record = client.job(args.job)
        if record["state"] != last_state:
            last_state = record["state"]
            print(f"{record['job_id']}: {record['state']}")
        live_path = record.get("live_path")
        payload = LiveStatus.read(live_path) if live_path else None
        if payload is not None \
                and payload.get("updated") != last_updated:
            last_updated = payload.get("updated")
            frontier = payload.get("frontier_cycle", 0)
            target = payload.get("target_cycles")
            progress = (f" / {target} "
                        f"({frontier / target * 100.0:.1f}%)"
                        if target else "")
            print(f"[{payload.get('backend', '?')}] "
                  f"cycle {frontier}{progress}  "
                  f"rate {payload.get('rate_hz', 0.0) / 1e3:.2f} kHz  "
                  f"{payload.get('status', '?')}")
        if record["state"] in TERMINAL:
            _print_job(record)
            return 0 if record["state"] == "done" else 1
        if args.once:
            return 0
        if time.monotonic() > deadline:
            print("watch: timed out", file=sys.stderr)
            return 1
        time.sleep(args.poll)


def cmd_watch(args) -> int:
    """Follow a live-status file until the run finishes (or times
    out).  ``--once`` prints a single snapshot — scripts and tests use
    it to poll without blocking.  ``--job ID --server HOST:PORT``
    follows a service job instead (reusing the job's own live-status
    file when the service keeps one)."""
    if args.job:
        return _watch_job(args)
    deadline = time.monotonic() + args.timeout
    last_updated = None
    while True:
        payload = LiveStatus.read(args.status)
        if payload is not None \
                and payload.get("updated") != last_updated:
            last_updated = payload.get("updated")
            frontier = payload.get("frontier_cycle", 0)
            target = payload.get("target_cycles")
            rate = payload.get("rate_hz", 0.0)
            progress = (f" / {target} "
                        f"({frontier / target * 100.0:.1f}%)"
                        if target else "")
            print(f"[{payload.get('backend', '?')}] "
                  f"cycle {frontier}{progress}  "
                  f"rate {rate / 1e3:.2f} kHz  "
                  f"{payload.get('status', '?')}")
            if payload.get("status") == "done":
                return 0
        if args.once:
            if payload is None:
                print(f"watch: no status at {args.status}",
                      file=sys.stderr)
                return 1
            return 0
        if time.monotonic() > deadline:
            print("watch: timed out", file=sys.stderr)
            return 1
        time.sleep(args.poll)


def cmd_regress(args) -> int:
    report = run_gate(results_dir=args.results_dir,
                      threshold=args.threshold,
                      inject_slowdown=args.inject_slowdown,
                      update=args.update,
                      runs_dir=args.runs_dir)
    print(report.to_text(args.threshold))
    return 0 if report.ok else 1


def _farm_spec(args):
    from .farm import FarmSpec
    return FarmSpec.from_file(args.hosts)


def _parse_colocate(entries: Optional[List[str]]) -> List[List[str]]:
    return [entry.split(",") for entry in (entries or [])]


def _parse_kills(entries: Optional[List[str]]) -> dict:
    kills = {}
    for entry in entries or []:
        host, _, pass_no = entry.rpartition(":")
        try:
            kills[host] = int(pass_no)
        except ValueError:
            host = ""
        if not host:
            raise ReproError(
                f"--kill-host wants HOST:PASS, got {entry!r}")
    return kills


def _print_placement(placement, spec) -> None:
    by_host = placement.by_host()
    for host in sorted(by_host):
        cores = spec.hosts[host].cores
        parts = by_host[host]
        print(f"  {host} ({len(parts)}/{cores} cores): "
              f"{', '.join(parts)}")
    if placement.groups:
        groups = "; ".join(",".join(g) for g in placement.groups)
        print(f"  co-location groups honoured: {groups}")
    print(f"  cross-host links: {placement.cross_links}  "
          f"modelled cut: {placement.cut_cost_ns:.1f} ns/token")


def cmd_farm_plan(args) -> int:
    circuit = _load(args.circuit)
    design = FireRipper(_spec(args)).compile(circuit)
    sim = design.build_simulation(
        TRANSPORTS[args.transport], host_freq_mhz=args.freq)
    spec = _farm_spec(args)
    from .farm import place_sim
    placement = place_sim(sim, spec, _parse_colocate(args.colocate))
    hosts = spec.live_hosts()
    print(f"farm: {len(hosts)} live host(s), "
          f"{spec.total_cores()} cores "
          f"(default link: {spec.default_link})")
    print(f"placement of {len(placement.assignment)} partition(s) "
          f"onto {len(placement.hosts_used())} host(s):")
    _print_placement(placement, spec)
    return 0


def cmd_farm_launch(args) -> int:
    circuit = _load(args.circuit)
    design = FireRipper(_spec(args)).compile(circuit)
    spec = _farm_spec(args)

    def build():
        return design.build_simulation(
            TRANSPORTS[args.transport], host_freq_mhz=args.freq,
            record_outputs=True)

    from .farm import FarmManager
    manager = FarmManager(
        build, spec,
        colocate=_parse_colocate(args.colocate),
        checkpoint_every=args.checkpoint_every,
        max_rollbacks=args.max_rollbacks,
        heartbeat_timeout=args.heartbeat_timeout,
        host_faults=_parse_kills(args.kill_host))
    registry = RunRegistry(args.runs_dir) if args.archive else None
    report = manager.launch(args.cycles, registry=registry,
                            run_name=args.archive or "farm")
    result = report.result
    print(f"simulated {result.target_cycles} target cycles across "
          f"{len(report.placement.hosts_used())} host(s) "
          f"at {result.rate_khz:.2f} kHz")
    for i, placement in enumerate(report.placements):
        label = "placement" if len(report.placements) == 1 \
            else f"placement #{i + 1}"
        print(f"{label}:")
        _print_placement(placement, spec)
    if report.dead_hosts:
        print(f"hosts lost mid-run: {', '.join(report.dead_hosts)} "
              f"(recovered by {report.supervisor.rollbacks} "
              f"rollback(s) onto {', '.join(report.live_hosts)})")
    for host in sorted(report.host_fmr):
        fmr = report.host_fmr[host]
        total = sum(fmr.values())
        top = max(fmr, key=fmr.get) if fmr else "-"
        print(f"  FMR[{host}]: {total:.2f} (dominant: {top})")
    if report.archive_path:
        print(f"archived run: {report.archive_path}")
    return 0


def cmd_farm_status(args) -> int:
    registry = RunRegistry(args.runs_dir)
    records = [r for r in registry.list_runs() if "farm" in r]
    if not records:
        print(f"no archived farm runs under {registry.root}")
        return 0
    for record in records:
        farm = record["farm"]
        placements = farm.get("placements", [])
        hosts = sorted(placements[-1]["by_host"]) if placements else []
        dead = farm.get("dead_hosts", [])
        note = f"  lost: {','.join(dead)}" if dead else ""
        print(f"{record.get('run_id', '?')}: "
              f"{record.get('target_cycles', 0)} cycles on "
              f"{','.join(hosts) or '?'}  "
              f"rate {record.get('rate_hz', 0.0) / 1e3:.2f} kHz  "
              f"rollbacks {farm.get('rollbacks', 0)}{note}")
    return 0


def cmd_autopartition(args) -> int:
    circuit = _load(args.circuit)
    result = auto_partition(circuit, n_fpgas=args.fpgas, mode=args.mode,
                            keep_in_base=args.keep or [])
    print(result.to_text())
    return 0


def cmd_fuzz_run(args) -> int:
    from .fuzz import ALL_SHAPES, FuzzConfig, GeneratorKnobs, run_campaign

    shapes = tuple(args.shapes.split(",")) if args.shapes \
        else ALL_SHAPES
    config = FuzzConfig(
        seed=args.seed, budget=args.budget,
        start_index=args.start_index,
        oracles=tuple(args.oracles.split(",")) if args.oracles
        else FuzzConfig.oracles,
        backends=tuple(args.backends.split(",")) if args.backends
        else FuzzConfig.backends,
        corpus_dir=args.corpus,
        shrink=not args.no_shrink,
        max_failures=args.max_failures,
        knobs=GeneratorKnobs(shapes=shapes))
    registry = RunRegistry(args.runs_dir) if args.archive else None
    report = run_campaign(config, registry=registry,
                          progress=print if args.verbose else None)
    summary = report.summary()
    print(f"fuzz: {summary['scenarios']} scenario(s) from seed "
          f"{config.seed}, oracles {','.join(config.oracles)}, "
          f"backends {','.join(config.backends)}")
    print(f"shapes: " + ", ".join(
        f"{shape}={count}"
        for shape, count in sorted(summary["shapes"].items())))
    print(f"elapsed: {summary['elapsed_s']:.1f}s"
          + ("  (stopped early)" if summary["stopped_early"] else ""))
    for outcome in report.errors:
        print(f"  error [{outcome.index}] {outcome.shape}: "
              f"{outcome.message}", file=sys.stderr)
    for outcome in report.failures:
        print(f"  FAILED [{outcome.index}] {outcome.shape}: "
              f"{outcome.message}", file=sys.stderr)
        if outcome.repro_path:
            print(f"    repro: {outcome.repro_path}  "
                  f"(replay with: repro fuzz replay "
                  f"{outcome.repro_path})", file=sys.stderr)
    if report.ok:
        print("no disagreements found")
    return 0 if report.ok else 1


def cmd_fuzz_replay(args) -> int:
    from .errors import FuzzFailure
    from .fuzz import replay

    oracles = tuple(args.oracles.split(",")) if args.oracles else None
    try:
        notes = replay(args.repro, oracles=oracles)
    except FuzzFailure as exc:
        print(f"still failing: {exc}", file=sys.stderr)
        return 1
    print(f"repro replays clean: {args.repro}")
    for oracle, note in notes.items():
        status = note.get("status") or "ok"
        print(f"  {oracle}: {status}")
    return 0


def cmd_fuzz_corpus(args) -> int:
    from .fuzz import list_corpus

    entries = list_corpus(args.corpus)
    if not entries:
        print(f"no repros under {args.corpus}")
        return 0
    for e in entries:
        backend = f" backend={e['backend']}" if e["backend"] else ""
        print(f"{e['path']}: {e['oracle']}{backend} "
              f"{e['shape']} seed={e['seed']} index={e['index']} "
              f"{e['num_partitions']} partition(s), "
              f"{e['cycles']} cycles")
    print(f"{len(entries)} repro(s)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FireAxe reproduction: partition and co-simulate "
                    "RTL designs across modelled FPGAs.")
    subs = parser.add_subparsers(dest="command", required=True)

    p_report = subs.add_parser("report", help="compile + print feedback")
    _add_common(p_report)
    p_report.add_argument("--transport", choices=TRANSPORTS,
                          default="qsfp")
    p_report.add_argument("--freq", type=float, default=30.0,
                          help="bitstream frequency in MHz")
    p_report.set_defaults(fn=cmd_report)

    p_part = subs.add_parser("partition",
                             help="write per-FPGA circuit files")
    _add_common(p_part)
    p_part.add_argument("--out", default="partitions",
                        help="output directory")
    p_part.set_defaults(fn=cmd_partition)

    p_sim = subs.add_parser("simulate", help="run the co-simulation")
    _add_common(p_sim)
    p_sim.add_argument("--transport", choices=TRANSPORTS, default="qsfp")
    p_sim.add_argument("--freq", type=float, default=30.0)
    p_sim.add_argument("--cycles", type=int, default=1000)
    p_sim.add_argument("--until", metavar="SIGNAL",
                       help="stop when this base output reads 1")
    p_sim.add_argument("--backend",
                       choices=["auto", "inproc", "process",
                                "process-shm", "process-socket"],
                       default="auto",
                       help="execution engine: 'process' runs one OS "
                            "worker per partition; 'process-shm' / "
                            "'process-socket' additionally move token "
                            "frames over shared-memory rings / local "
                            "sockets (default: auto, honouring "
                            "REPRO_BACKEND)")
    p_sim.add_argument("--metrics", type=int, default=0, metavar="N",
                       help="sample a deterministic metric time-series "
                            "every N target cycles (0: off)")
    p_sim.add_argument("--live", metavar="FILE",
                       help="keep a live status file up to date while "
                            "the run progresses (repro watch reads it; "
                            "implies --metrics 50 unless given)")
    p_sim.add_argument("--archive", metavar="NAME",
                       help="archive the run under the run registry "
                            "with this name (implies --metrics 50 "
                            "unless given)")
    p_sim.add_argument("--runs-dir", default="results/runs",
                       help="run registry directory "
                            "(default: results/runs)")
    p_sim.add_argument("--no-jit", action="store_true",
                       help="run the interpreted wavefront loop instead "
                            "of the compiled step functions (results "
                            "are bit-identical either way; the "
                            "interpreter keeps every combinational "
                            "signal peekable between passes)")
    p_sim.set_defaults(fn=cmd_simulate)

    p_jit = subs.add_parser(
        "jit",
        help="explain/dump the compiled step plane for a design")
    _add_common(p_jit)
    p_jit.add_argument("--transport", choices=TRANSPORTS, default="qsfp")
    p_jit.add_argument("--freq", type=float, default=30.0)
    p_jit.add_argument("--dump", action="store_true",
                       help="print the generated step-function and "
                            "RTL-kernel sources")
    p_jit.set_defaults(fn=cmd_jit)

    p_rel = subs.add_parser(
        "reliability",
        help="supervised fault-injected co-simulation over reliable "
             "links")
    _add_common(p_rel)
    p_rel.add_argument("--transport", choices=TRANSPORTS, default="qsfp")
    p_rel.add_argument("--freq", type=float, default=30.0)
    p_rel.add_argument("--cycles", type=int, default=200)
    p_rel.add_argument("--seed", type=int, default=0,
                       help="fault schedule seed")
    p_rel.add_argument("--drop-rate", type=float, default=0.0)
    p_rel.add_argument("--corrupt-rate", type=float, default=0.0)
    p_rel.add_argument("--spike-rate", type=float, default=0.0)
    p_rel.add_argument("--spike-ns", type=float, default=20_000.0)
    p_rel.add_argument("--flap", action="append",
                       metavar="START_NS:DURATION_NS",
                       help="link outage window (repeatable)")
    p_rel.add_argument("--checkpoint-every", type=int, default=100,
                       help="target cycles between checkpoints")
    p_rel.add_argument("--checkpoint-dir",
                       help="also persist checkpoints to this directory")
    p_rel.add_argument("--max-rollbacks", type=int, default=3)
    p_rel.add_argument("--crash-at", action="append", type=int,
                       metavar="CYCLE",
                       help="inject a one-shot host crash (repeatable)")
    p_rel.add_argument("--unreliable", action="store_true",
                       help="skip the reliable link layer (faults then "
                            "corrupt results or deadlock the run)")
    p_rel.set_defaults(fn=cmd_reliability)

    p_trace = subs.add_parser(
        "trace",
        help="run with a recording tracer and export Chrome trace "
             "JSON, or stitch a service job's cross-process trace "
             "with --job")
    p_trace.add_argument("circuit", nargs="?",
                         help="circuit file in the textual IR "
                              "(omit with --job)")
    p_trace.add_argument("--extract", action="append",
                         metavar="PATHS",
                         help="comma-separated instance paths for one "
                              "FPGA (repeatable)")
    p_trace.add_argument("--mode", choices=["exact", "fast"],
                         default=EXACT)
    p_trace.add_argument("--transport", choices=TRANSPORTS,
                         default="qsfp")
    p_trace.add_argument("--freq", type=float, default=30.0)
    p_trace.add_argument("--cycles", type=int, default=200)
    p_trace.add_argument("--out", default="trace.json",
                         help="trace-event JSON output path")
    p_trace.add_argument("--events", type=int, default=None,
                         metavar="N",
                         help="ring-buffer capacity (default: keep all)")
    p_trace.add_argument("--gzip", action="store_true",
                         help="gzip the streamed export (.gz appended "
                              "to the output name; Perfetto opens "
                              ".json.gz directly)")
    p_trace.add_argument("--job", metavar="JOB_ID",
                         help="stitch this service job's scheduler, "
                              "event-log and partition spans into one "
                              "trace instead of running a circuit")
    p_trace.add_argument("--server", default="127.0.0.1",
                         metavar="HOST[:PORT]",
                         help="service endpoint for --job "
                              "(default: 127.0.0.1:8642)")
    p_trace.add_argument("--runs-dir", default="results/runs",
                         help="run registry holding the job's archived "
                              "partition spans (default: results/runs)")
    p_trace.add_argument("--log", default=None, metavar="FILE",
                         help="service event log to fold queue/worker "
                              "events from (--job only)")
    p_trace.set_defaults(fn=cmd_trace)

    p_prof = subs.add_parser(
        "profile",
        help="run and print the FMR breakdown / bottleneck report")
    _add_common(p_prof)
    p_prof.add_argument("--transport", choices=TRANSPORTS,
                        default="qsfp")
    p_prof.add_argument("--freq", type=float, default=30.0)
    p_prof.add_argument("--cycles", type=int, default=200)
    p_prof.set_defaults(fn=cmd_profile)

    p_exp = subs.add_parser(
        "experiments",
        help="regenerate the paper's tables/figures "
             "(alias for python -m repro.experiments; supports "
             "--jobs N for parallel experiments)")
    p_exp.add_argument("rest", nargs=argparse.REMAINDER,
                       help="arguments for repro.experiments "
                            "(names, --out, --profile, --jobs)")
    p_exp.set_defaults(fn=cmd_experiments)

    p_cmp = subs.add_parser(
        "compare",
        help="diff two archived runs: rate delta + FMR attribution")
    p_cmp.add_argument("run_a", help="baseline run id (or run.json path)")
    p_cmp.add_argument("run_b", help="new run id (or run.json path)")
    p_cmp.add_argument("--runs-dir", default="results/runs")
    p_cmp.set_defaults(fn=cmd_compare)

    p_watch = subs.add_parser(
        "watch",
        help="follow an in-flight run's live status file (or a "
             "service job)")
    p_watch.add_argument("status", nargs="?", default="results/live.json",
                         help="status file written by simulate --live "
                              "(default: results/live.json)")
    p_watch.add_argument("--job", metavar="JOB_ID",
                         help="follow this service job instead of a "
                              "status file (needs --server)")
    p_watch.add_argument("--server", default="127.0.0.1",
                         metavar="HOST[:PORT]",
                         help="service endpoint for --job "
                              "(default: 127.0.0.1:8642)")
    p_watch.add_argument("--poll", type=float, default=0.25,
                         help="poll interval in seconds")
    p_watch.add_argument("--timeout", type=float, default=300.0,
                         help="give up after this many seconds")
    p_watch.add_argument("--once", action="store_true",
                         help="print one snapshot and exit")
    p_watch.set_defaults(fn=cmd_watch)

    p_serve = subs.add_parser(
        "serve",
        help="run the multi-tenant simulation service: JSON-over-HTTP "
             "job queue with per-tenant quotas and a fingerprint-keyed "
             "result cache over the run registry")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8642,
                         help="listen port (default: 8642; 0 picks a "
                              "free port)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="concurrent simulation executions "
                              "(default: 2)")
    p_serve.add_argument("--runs-dir", default="results/runs",
                         help="run registry that is both archive and "
                              "result cache (default: results/runs)")
    p_serve.add_argument("--live-dir", default=None, metavar="DIR",
                         help="keep one live-status file per executed "
                              "job here (repro watch --job follows it)")
    p_serve.add_argument("--metrics", type=int, default=0, metavar="N",
                         help="telemetry sample interval for executed "
                              "jobs (0: none unless --live-dir)")
    p_serve.add_argument("--quota", action="append",
                         metavar="TENANT:QUEUED:ACTIVE",
                         help="per-tenant quota override (repeatable)")
    p_serve.add_argument("--default-quota", metavar="QUEUED:ACTIVE",
                         help="quota for tenants without an override "
                              "(default: 16:64)")
    p_serve.add_argument("--event-log", default=None, metavar="FILE",
                         help="append structured lifecycle events to "
                              "this JSONL file (repro tail reads it; "
                              "default: no event log)")
    p_serve.add_argument("--trace-events", type=int, default=0,
                         metavar="N",
                         help="record up to N tracer spans per "
                              "executed job for repro trace --job "
                              "(default: 0, tracing off)")
    p_serve.set_defaults(fn=cmd_serve)

    p_sub = subs.add_parser(
        "submit",
        help="submit a job to a running service (cache hits return "
             "archived results without simulating)")
    p_sub.add_argument("circuit", nargs="?",
                       help="circuit file for a simulate job")
    p_sub.add_argument("--extract", action="append", metavar="PATHS",
                       help="comma-separated instance paths for one "
                            "FPGA (repeatable)")
    p_sub.add_argument("--mode", choices=["exact", "fast"],
                       default=EXACT)
    p_sub.add_argument("--transport", choices=TRANSPORTS,
                       default="qsfp")
    p_sub.add_argument("--freq", type=float, default=30.0)
    p_sub.add_argument("--cycles", type=int, default=1000)
    p_sub.add_argument("--backend",
                       choices=["auto", "inproc", "process",
                                "process-shm", "process-socket"],
                       default="auto")
    p_sub.add_argument("--inline", action="store_true",
                       help="send the circuit text itself instead of "
                            "its path (service on another filesystem)")
    p_sub.add_argument("--experiment", metavar="NAME",
                       help="submit a paper experiment instead of a "
                            "circuit")
    p_sub.add_argument("--config", metavar="FILE",
                       help="submit a raw job config JSON file")
    p_sub.add_argument("--server", default="127.0.0.1",
                       metavar="HOST[:PORT]",
                       help="service endpoint "
                            "(default: 127.0.0.1:8642)")
    p_sub.add_argument("--tenant", default="default")
    p_sub.add_argument("--priority", type=int, default=0,
                       help="higher runs first (default: 0)")
    p_sub.add_argument("--name", default="",
                       help="archive name for the run record")
    p_sub.add_argument("--wait", action="store_true",
                       help="block until the job is terminal; exit 0 "
                            "only on done")
    p_sub.add_argument("--timeout", type=float, default=300.0,
                       help="--wait deadline in seconds")
    p_sub.set_defaults(fn=cmd_submit)

    p_jobs = subs.add_parser(
        "jobs", help="list a running service's jobs")
    p_jobs.add_argument("--server", default="127.0.0.1",
                        metavar="HOST[:PORT]")
    p_jobs.add_argument("--tenant", default=None,
                        help="only this tenant's jobs")
    p_jobs.set_defaults(fn=cmd_jobs)

    p_tail = subs.add_parser(
        "tail",
        help="print or follow a service event log (one line per "
             "lifecycle event, filterable by corr id / tenant / kind)")
    p_tail.add_argument("log", help="event log JSONL path "
                                    "(serve --event-log FILE)")
    p_tail.add_argument("--corr", default=None, metavar="CORR_ID",
                        help="only events with this correlation id")
    p_tail.add_argument("--tenant", default=None,
                        help="only this tenant's events")
    p_tail.add_argument("--kind", action="append", metavar="KIND",
                        help="only these event kinds (repeatable)")
    p_tail.add_argument("--follow", "-f", action="store_true",
                        help="keep reading as the log grows")
    p_tail.add_argument("--timeout", type=float, default=None,
                        metavar="S",
                        help="stop following after this many idle "
                             "seconds (default: follow forever)")
    p_tail.set_defaults(fn=cmd_tail)

    p_top = subs.add_parser(
        "top",
        help="live service overview: queue depths, per-tenant "
             "latency quantiles, cache-hit rate")
    p_top.add_argument("--server", default="127.0.0.1",
                       metavar="HOST[:PORT]",
                       help="service endpoint (default: 127.0.0.1:8642)")
    p_top.add_argument("--interval", type=float, default=2.0,
                       help="refresh interval in seconds (default: 2)")
    p_top.add_argument("--once", action="store_true",
                       help="print one snapshot and exit")
    p_top.set_defaults(fn=cmd_top)

    p_cancel = subs.add_parser(
        "cancel", help="cancel a service job (queued or running)")
    p_cancel.add_argument("job_id")
    p_cancel.add_argument("--server", default="127.0.0.1",
                          metavar="HOST[:PORT]")
    p_cancel.set_defaults(fn=cmd_cancel)

    p_runs = subs.add_parser(
        "runs",
        help="inspect and prune the run registry (the service's "
             "result cache)")
    runs_subs = p_runs.add_subparsers(dest="runs_command",
                                      required=True)

    p_rlist = runs_subs.add_parser(
        "list", help="list archived runs from the registry index")
    p_rlist.add_argument("--runs-dir", default="results/runs")
    p_rlist.add_argument("--fingerprint", metavar="FP",
                         help="only runs of this config fingerprint")
    p_rlist.set_defaults(fn=cmd_runs_list)

    p_rgc = runs_subs.add_parser(
        "gc", help="prune archived runs by age / count / total size "
                   "(oldest first)")
    p_rgc.add_argument("--runs-dir", default="results/runs")
    p_rgc.add_argument("--max-age-days", type=float, default=None,
                       help="prune runs older than this many days")
    p_rgc.add_argument("--keep", type=int, default=None,
                       help="keep at most this many newest runs")
    p_rgc.add_argument("--max-bytes", type=int, default=None,
                       help="prune oldest runs until the registry "
                            "fits this many bytes")
    p_rgc.add_argument("--dry-run", action="store_true",
                       help="report what would be pruned, delete "
                            "nothing")
    p_rgc.set_defaults(fn=cmd_runs_gc)

    p_reg = subs.add_parser(
        "regress",
        help="regression gate: canonical modelled rates vs the "
             "committed baseline, benchmark bounds, run trajectory")
    p_reg.add_argument("--results-dir", default="results")
    p_reg.add_argument("--runs-dir", default=None,
                       help="also judge the newest archived run in this "
                            "registry against its trajectory")
    p_reg.add_argument("--threshold", type=float, default=0.10,
                       help="allowed fractional rate degradation "
                            "(default: 0.10)")
    p_reg.add_argument("--inject-slowdown", type=float, default=0.0,
                       metavar="FRAC",
                       help="scale measured rates down by FRAC — the "
                            "CI self-test proving the gate trips")
    p_reg.add_argument("--update", action="store_true",
                       help="rewrite the baseline from this "
                            "measurement instead of checking")
    p_reg.set_defaults(fn=cmd_regress)

    p_farm = subs.add_parser(
        "farm",
        help="simulated run farm: place, deploy and supervise a "
             "partitioned run across virtual hosts")
    farm_subs = p_farm.add_subparsers(dest="farm_command",
                                      required=True)

    p_fplan = farm_subs.add_parser(
        "plan", help="place the partitions onto the farm and print "
                     "the modelled cut (no run)")
    _add_common(p_fplan)
    p_fplan.add_argument("--hosts", required=True,
                         help="farm host manifest (JSON; see "
                              "examples/farm_hosts.json)")
    p_fplan.add_argument("--transport", choices=TRANSPORTS,
                         default="qsfp")
    p_fplan.add_argument("--freq", type=float, default=30.0)
    p_fplan.add_argument("--colocate", action="append",
                         metavar="PART,PART[,...]",
                         help="partitions that must share a host "
                              "(repeatable)")
    p_fplan.set_defaults(fn=cmd_farm_plan)

    p_flaunch = farm_subs.add_parser(
        "launch", help="run the placed design under supervision; "
                       "host deaths roll back and re-place onto the "
                       "survivors")
    _add_common(p_flaunch)
    p_flaunch.add_argument("--hosts", required=True,
                           help="farm host manifest (JSON)")
    p_flaunch.add_argument("--transport", choices=TRANSPORTS,
                           default="qsfp")
    p_flaunch.add_argument("--freq", type=float, default=30.0)
    p_flaunch.add_argument("--cycles", type=int, default=1000)
    p_flaunch.add_argument("--colocate", action="append",
                           metavar="PART,PART[,...]")
    p_flaunch.add_argument("--checkpoint-every", type=int, default=100,
                           help="target cycles between supervisor "
                                "checkpoints")
    p_flaunch.add_argument("--max-rollbacks", type=int, default=3)
    p_flaunch.add_argument("--heartbeat-timeout", type=float,
                           default=30.0,
                           help="seconds of agent silence before a "
                                "host is declared dead")
    p_flaunch.add_argument("--kill-host", action="append",
                           metavar="HOST:PASS",
                           help="fault injection: SIGKILL this host's "
                                "agent when a worker reaches the "
                                "given wavefront pass (repeatable)")
    p_flaunch.add_argument("--archive", metavar="NAME",
                           help="archive the run (with placement and "
                                "per-host FMR) under the run registry")
    p_flaunch.add_argument("--runs-dir", default="results/runs")
    p_flaunch.set_defaults(fn=cmd_farm_launch)

    p_fstatus = farm_subs.add_parser(
        "status", help="list archived farm runs")
    p_fstatus.add_argument("--runs-dir", default="results/runs")
    p_fstatus.set_defaults(fn=cmd_farm_status)

    p_auto = subs.add_parser("autopartition",
                             help="search for partition boundaries")
    p_auto.add_argument("circuit")
    p_auto.add_argument("--fpgas", type=int, default=2)
    p_auto.add_argument("--mode", choices=["exact", "fast"],
                        default=EXACT)
    p_auto.add_argument("--keep", action="append", metavar="INSTANCE",
                        help="pin an instance to the base partition")
    p_auto.set_defaults(fn=cmd_autopartition)

    p_fuzz = subs.add_parser(
        "fuzz",
        help="scenario mill: differential fuzzing of generated "
             "targets across backends, modes, checkpoints and faults")
    fuzz_subs = p_fuzz.add_subparsers(dest="fuzz_command",
                                      required=True)

    p_frun = fuzz_subs.add_parser(
        "run", help="generate scenarios and run the oracles; "
                    "failures are shrunk to repro files")
    p_frun.add_argument("--seed", type=int, default=0,
                        help="campaign seed (scenario i is a pure "
                             "function of seed and i)")
    p_frun.add_argument("--budget", type=int, default=50,
                        help="number of scenarios to mill")
    p_frun.add_argument("--start-index", type=int, default=0,
                        help="first scenario index (resume a campaign)")
    p_frun.add_argument("--shapes",
                        help="comma-separated target shapes "
                             "(default: all)")
    p_frun.add_argument("--oracles",
                        help="comma-separated oracles: identity,"
                             "fastmode,checkpoint,faults "
                             "(default: all)")
    p_frun.add_argument("--backends",
                        help="comma-separated backends for the "
                             "identity oracle (default: all four)")
    p_frun.add_argument("--corpus", default="results/fuzz-corpus",
                        help="directory for failure repros")
    p_frun.add_argument("--no-shrink", action="store_true",
                        help="keep failing scenarios unminimized")
    p_frun.add_argument("--max-failures", type=int, default=3,
                        help="stop after this many failures")
    p_frun.add_argument("--archive", action="store_true",
                        help="archive the campaign summary under the "
                             "run registry")
    p_frun.add_argument("--runs-dir", default="results/runs")
    p_frun.add_argument("--verbose", action="store_true",
                        help="print per-scenario progress")
    p_frun.set_defaults(fn=cmd_fuzz_run)

    p_freplay = fuzz_subs.add_parser(
        "replay", help="re-run a repro file through its oracle")
    p_freplay.add_argument("repro", help="repro JSON path")
    p_freplay.add_argument("--oracles",
                           help="override the oracle list "
                                "(default: the repro's own oracle)")
    p_freplay.set_defaults(fn=cmd_fuzz_replay)

    p_fcorpus = fuzz_subs.add_parser(
        "corpus", help="list the repro corpus")
    p_fcorpus.add_argument("--corpus", default="results/fuzz-corpus")
    p_fcorpus.set_defaults(fn=cmd_fuzz_corpus)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
