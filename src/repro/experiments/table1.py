"""Table I: microarchitectural parameters and core areas (Sec. V-B)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..uarch.params import (
    CoreParams,
    GC40_BOOM,
    GC_XEON,
    LARGE_BOOM,
    PUBLISHED_AREA_MM2,
)

_ROWS = [
    ("Issue width", "issue_width"),
    ("ROB entries", "rob_entries"),
    ("I-Phys Regs", "int_phys_regs"),
    ("F-Phys Regs", "fp_phys_regs"),
    ("Ld queue entries", "ld_queue"),
    ("St queue entries", "st_queue"),
    ("Fetch buffer entries", "fetch_buffer"),
    ("L1-I (kB)", "l1i_kib"),
    ("L1-D (kB)", "l1d_kib"),
]

CORES = (LARGE_BOOM, GC40_BOOM, GC_XEON)


@dataclass
class Table1Result:
    """Parameter table plus modelled vs published areas."""

    cores: List[CoreParams]
    modeled_area_mm2: Dict[str, float]
    published_area_mm2: Dict[str, float]


def run() -> Table1Result:
    """Assemble Table I (pure data; the area model prices BOOM variants)."""
    modeled = {c.name: c.area_mm2() for c in (LARGE_BOOM, GC40_BOOM)}
    return Table1Result(
        cores=list(CORES),
        modeled_area_mm2=modeled,
        published_area_mm2=dict(PUBLISHED_AREA_MM2),
    )


def format_table(result: Table1Result) -> str:
    lines = [f"{'':<24}" + "".join(f"{c.name:>14}" for c in result.cores)]
    for label, attr in _ROWS:
        row = f"{label:<24}"
        for c in result.cores:
            row += f"{getattr(c, attr):>14}"
        lines.append(row)
    lines.append("")
    lines.append(f"{'area (paper, mm^2)':<24}" + "".join(
        f"{result.published_area_mm2[c.name]:>14.2f}"
        for c in result.cores))
    lines.append(f"{'area (model, mm^2)':<24}" + "".join(
        f"{result.modeled_area_mm2.get(c.name, float('nan')):>14.2f}"
        for c in result.cores))
    return "\n".join(lines)
