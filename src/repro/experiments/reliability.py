"""Fault-rate vs achieved-rate degradation curves.

Runs the two-FPGA comb pair over reliable QSFP links while sweeping the
per-attempt fault rate (split evenly across drops, bit corruption, and
latency spikes, plus one link-flap window for every faulty point).  For
each point we verify the reliable layer's guarantee — the delivered
token stream is bit-identical to the fault-free run — and report how
much simulation rate the recoveries cost.  This is the degradation
curve an operator consults to decide whether a flaky cable is worth
swapping mid-campaign.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..fireripper import FAST, FireRipper, PartitionGroup, PartitionSpec
from ..platform.transport import QSFP_AURORA
from ..reliability import FaultSpec, harden_links
from ..targets import make_comb_pair_circuit

#: one cable pull per faulty run, early enough to land mid-run
FLAP_WINDOW = (30_000.0, 40_000.0)


@dataclass
class FaultRatePoint:
    """One point of the degradation curve."""

    fault_rate: float
    rate_hz: float
    relative: float  # fraction of the fault-free rate
    retries: int
    drops_recovered: int
    crc_rejects: int
    flap_stalls: int
    bit_identical: bool


def _build(design):
    return design.build_simulation(QSFP_AURORA, record_outputs=True)


def run(fault_rates: Sequence[float] = (0.0, 0.01, 0.03, 0.06, 0.12),
        cycles: int = 160, seed: int = 7) -> List[FaultRatePoint]:
    spec = PartitionSpec(mode=FAST, groups=[
        PartitionGroup.make("fpga1", ["right"])])
    design = FireRipper(spec).compile(make_comb_pair_circuit())

    clean = _build(design)
    harden_links(clean)
    clean_result = clean.run(cycles)

    points: List[FaultRatePoint] = []
    for rate in fault_rates:
        sim = _build(design)
        fault_spec = None
        if rate > 0:
            fault_spec = FaultSpec(
                seed=seed, drop_rate=rate / 3, corrupt_rate=rate / 3,
                spike_rate=rate / 3, flaps=(FLAP_WINDOW,))
        harden_links(sim, fault_spec)
        result = sim.run(cycles)
        stats = result.detail.get("reliability", {})
        totals = {key: sum(s[key] for s in stats.values())
                  for key in ("retries", "drops_recovered",
                              "crc_rejects", "flap_stalls")}
        points.append(FaultRatePoint(
            fault_rate=rate,
            rate_hz=result.rate_hz,
            relative=result.rate_hz / clean_result.rate_hz,
            retries=totals["retries"],
            drops_recovered=totals["drops_recovered"],
            crc_rejects=totals["crc_rejects"],
            flap_stalls=totals["flap_stalls"],
            bit_identical=sim.output_log == clean.output_log))
    return points


def format_table(points: Sequence[FaultRatePoint]) -> str:
    lines = [f"{'fault rate':>11}{'rate(kHz)':>11}{'vs clean':>10}"
             f"{'retries':>9}{'drops':>7}{'crc':>6}{'flaps':>7}"
             f"{'identical':>11}"]
    for p in points:
        lines.append(
            f"{p.fault_rate:>11.3f}{p.rate_hz / 1e3:>11.1f}"
            f"{p.relative * 100:>9.1f}%{p.retries:>9}"
            f"{p.drops_recovered:>7}{p.crc_rejects:>6}"
            f"{p.flap_stalls:>7}"
            f"{'yes' if p.bit_identical else 'NO':>11}")
    return "\n".join(lines)
