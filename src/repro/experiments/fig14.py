"""Fig. 14: amortizing inter-FPGA communication latency via FAME-5.

N identical sender tiles are partitioned out of a star SoC and
multithreaded onto a single FPGA with FAME-5 while the SoC subsystem
stays on the base FPGA.  The tile side runs at a fixed 15 MHz bitstream
frequency while the base side sweeps 20-30 MHz, as in the paper.  The
claim to preserve: growing the design from one to six threaded tiles
degrades the simulation rate by *less than 2x*, because the N host
cycles (and the linearly growing off-FPGA traffic) overlap with the
inter-FPGA link latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..errors import SimulationError
from ..fireripper import EXACT, FireRipper, PartitionGroup, PartitionSpec
from ..platform.transport import QSFP_AURORA
from ..targets.soc import make_star_soc

TILE_FREQ_MHZ = 15.0
SOC_FREQS_MHZ = (20.0, 25.0, 30.0)


@dataclass
class Fame5Point:
    """One point of Fig. 14."""

    n_tiles: int
    soc_freq_mhz: float
    tile_freq_mhz: float
    measured_hz: float

    @property
    def measured_mhz(self) -> float:
        return self.measured_hz / 1e6


def measure(n_tiles: int, soc_freq_mhz: float,
            tile_freq_mhz: float = TILE_FREQ_MHZ,
            cycles: int = 120) -> float:
    """Rate of a star SoC with all tiles FAME-5 threaded on one FPGA."""
    circuit = make_star_soc(n_tiles, messages_per_tile=5)
    groups = [PartitionGroup.make(f"g{i}", [f"tile{i}"])
              for i in range(n_tiles)]
    design = FireRipper(PartitionSpec(mode=EXACT, groups=groups)) \
        .compile(circuit)
    sim = design.build_simulation(
        QSFP_AURORA,
        host_freq_mhz={"base": soc_freq_mhz,
                       "tilefpga": tile_freq_mhz},
        fame5_merge={"tilefpga": [f"g{i}" for i in range(n_tiles)]},
        # deeper channel buffers let per-thread tokens pipeline into the
        # link — the amortization mechanism of Sec. VI-B
        channel_capacity=1)
    return sim.run(cycles).rate_hz


def run(tile_counts: Sequence[int] = (1, 2, 3, 4, 5, 6),
        soc_freqs_mhz: Sequence[float] = SOC_FREQS_MHZ,
        cycles: int = 120) -> List[Fame5Point]:
    points: List[Fame5Point] = []
    for freq in soc_freqs_mhz:
        for n in tile_counts:
            rate = measure(n, freq, cycles=cycles)
            points.append(Fame5Point(n, freq, TILE_FREQ_MHZ, rate))
    return points


def degradation_factor(points: Sequence[Fame5Point],
                       soc_freq_mhz: float) -> float:
    """Rate(1 tile) / rate(max tiles) at one SoC frequency (paper: <2)."""
    series = [p for p in points if p.soc_freq_mhz == soc_freq_mhz]
    if not series:
        raise SimulationError(f"no points at {soc_freq_mhz} MHz")
    first = min(series, key=lambda p: p.n_tiles)
    last = max(series, key=lambda p: p.n_tiles)
    return first.measured_hz / last.measured_hz


def format_table(points: Sequence[Fame5Point]) -> str:
    lines = [f"{'tiles':>6}{'SoC freq(MHz)':>15}{'rate(MHz)':>12}"]
    for p in points:
        lines.append(f"{p.n_tiles:>6}{p.soc_freq_mhz:>15.0f}"
                     f"{p.measured_mhz:>12.3f}")
    for freq in sorted({p.soc_freq_mhz for p in points}):
        lines.append(f"degradation 1 -> max tiles @ {freq:.0f} MHz: "
                     f"{degradation_factor(points, freq):.2f}x "
                     f"(paper: < 2x)")
    return "\n".join(lines)
