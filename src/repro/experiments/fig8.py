"""Fig. 8: CPI stacks for Large BOOM vs GC40 BOOM.

The paper integrates the TIP profiler into FireAxe and plots where each
core spends its cycles for a selected set of Embench benchmarks; our
pipeline model's commit-gap attribution provides the same
time-proportional stacks.  The claims to preserve: ``nettle-aes`` is
dominated by frontend/base commit pressure that GC40's doubled width
relieves, while ``nbody`` stalls on execution hazards that extra width
does not help.
"""

from __future__ import annotations

from typing import List, Sequence

from ..uarch.cpistack import CPIStack, cpi_stacks, render_stacks
from ..uarch.params import GC40_BOOM, LARGE_BOOM
from ..uarch.workloads import EMBENCH_BY_NAME, Workload

#: the benchmark subset shown in the paper's Fig. 8 (chosen to span the
#: performance-change range)
SELECTED = ("nettle-aes", "nbody", "crc32", "huffbench", "edn",
            "nsichneu")


def run(benchmarks: Sequence[str] = SELECTED,
        n_instr: int = 40_000, seed: int = 7) -> List[CPIStack]:
    """CPI stacks for the selected benchmarks on both BOOM variants."""
    workloads: List[Workload] = [EMBENCH_BY_NAME[name]
                                 for name in benchmarks]
    return cpi_stacks([LARGE_BOOM, GC40_BOOM], workloads,
                      n_instr=n_instr, seed=seed)


def format_table(stacks: Sequence[CPIStack]) -> str:
    return render_stacks(list(stacks))
