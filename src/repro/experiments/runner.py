"""Run every experiment and print the paper's tables/series.

Usage::

    python -m repro.experiments            # everything
    python -m repro.experiments fig11 t2   # a subset (prefix matching)

Results print to stdout in the same rows/series the paper reports;
pass ``--out DIR`` to also write one ``.txt`` file per experiment,
``--profile`` to append a host-time profile (FMR component split and
dominant bottleneck) per experiment, collected from every partitioned
run the experiment performs, ``--archive DIR`` to archive each
experiment's final partitioned run into a run registry (so ``repro
compare`` / ``repro regress`` can track experiment trajectories across
sessions), and ``--jobs N`` to run independent experiments in up to
``N`` forked worker processes (``--profile`` and ``--archive`` force
sequential execution: both aggregate in-process state that cannot
cross a fork).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ReproError
from ..observability import profile_session
from ..parallel import fanout
from . import (
    casestudy_24core,
    casestudy_gc40,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    reliability,
    table1,
    table2,
)

#: name -> zero-argument callable producing formatted text
EXPERIMENTS: Dict[str, Callable[[], str]] = {
    "table1": lambda: table1.format_table(table1.run()),
    "table2": lambda: table2.format_table(table2.run()),
    "fig7": lambda: fig7.format_table(fig7.run()),
    "fig8": lambda: fig8.format_table(fig8.run()),
    "fig9": lambda: fig9.format_table(fig9.run()),
    "fig10": lambda: fig10.format_table(fig10.run()),
    "fig11": lambda: fig11.format_table(fig11.run()),
    "fig12": lambda: fig12.format_table(fig12.run()),
    "fig13": lambda: fig13.format_table(fig13.run()),
    "fig14": lambda: fig14.format_table(fig14.run()),
    "casestudy_24core":
        lambda: casestudy_24core.format_table(casestudy_24core.run()),
    "casestudy_gc40":
        lambda: casestudy_gc40.format_table(casestudy_gc40.run()),
    "reliability":
        lambda: reliability.format_table(reliability.run()),
}


def run_experiment(name: str) -> str:
    """Run one experiment by exact name, returning its formatted text.

    The library entry point the simulation service dispatches
    ``{"kind": "experiment"}`` jobs through; raises a typed error (not
    ``KeyError``) for unknown names so the failure maps to a job
    failure instead of a service crash.
    """
    try:
        fn = EXPERIMENTS[name]
    except KeyError:
        raise ReproError(
            f"unknown experiment {name!r}; "
            f"available: {', '.join(sorted(EXPERIMENTS))}")
    return fn()


def select(patterns: List[str]) -> List[str]:
    """Experiment names matching any prefix pattern (all when empty)."""
    if not patterns:
        return list(EXPERIMENTS)
    chosen = []
    for name in EXPERIMENTS:
        if any(name.startswith(p) for p in patterns):
            chosen.append(name)
    return chosen


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the FireAxe paper's tables and figures.")
    parser.add_argument("experiments", nargs="*",
                        help="experiment name prefixes (default: all)")
    parser.add_argument("--out", type=Path, default=None,
                        help="directory for per-experiment .txt outputs")
    parser.add_argument("--profile", action="store_true",
                        help="append a host-time profile (FMR component "
                             "split, bottleneck) per experiment")
    parser.add_argument("--archive", type=Path, default=None,
                        metavar="DIR",
                        help="archive each experiment's final "
                             "partitioned run into the run registry at "
                             "DIR (forces sequential execution)")
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        help="run up to N experiments concurrently in "
                             "forked workers (default: 1; ignored with "
                             "--profile/--archive)")
    args = parser.parse_args(argv)

    names = select(args.experiments)
    if not names:
        print(f"no experiments match {args.experiments}; "
              f"available: {sorted(EXPERIMENTS)}", file=sys.stderr)
        return 2
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)

    jobs = 1 if (args.profile or args.archive is not None) \
        else args.jobs
    registry = None
    if args.archive is not None:
        from ..telemetry import RunRegistry
        registry = RunRegistry(args.archive)

    def run_one(name: str) -> Tuple[str, float]:
        start = time.time()
        if args.profile or registry is not None:
            # the ambient session also captures every partitioned
            # result, which is what --archive persists
            with profile_session() as session:
                text = run_experiment(name)
            if args.profile:
                text += "\n\n" + session.summary()
            if registry is not None and session.results:
                path = registry.archive(
                    session.results[-1], name=name,
                    config={"experiment": name})
                text += f"\n[archived {path}]"
        else:
            text = run_experiment(name)
        return text, time.time() - start

    if jobs > 1:
        outputs = fanout([lambda n=name: run_one(n) for name in names],
                         jobs, labels=names)
    else:
        outputs = None

    for i, name in enumerate(names):
        print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
        text, seconds = outputs[i] if outputs is not None \
            else run_one(name)
        print(text)
        print(f"[{name}: {seconds:.1f}s]")
        if args.out is not None:
            (args.out / f"{name}.txt").write_text(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
