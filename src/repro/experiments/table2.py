"""Table II: simulator validation — cycle counts of monolithic FireSim
simulations vs exact-mode and fast-mode partitioned simulations.

Three targets, as in the paper:

* a Rocket-like core tile booting a workload and streaming to the SoC
  subsystem (partition point: the tile),
* a Sha3-like accelerator whose operation is memory-latency-bound
  (the most fast-mode-sensitive target),
* a Gemmini-like accelerator whose operation is compute-bound over a
  local scratchpad (the least sensitive).

Expectations: exact-mode matches monolithic cycle-for-cycle ("No Error");
fast-mode deviates by a workload-dependent amount, largest for Sha3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import SimulationError
from ..firrtl.circuit import Circuit
from ..fireripper import EXACT, FAST, FireRipper, PartitionGroup, PartitionSpec
from ..harness import MonolithicSimulation, cycle_count_error_pct
from ..platform import QSFP_AURORA
from ..targets.accel import make_gemmini_soc, make_sha3_soc
from ..targets.soc import make_rocket_like_soc


@dataclass
class ValidationRow:
    """One row of Table II."""

    name: str
    monolithic_cycles: int
    exact_cycles: int
    fast_cycles: int

    @property
    def exact_error_pct(self) -> float:
        return cycle_count_error_pct(self.monolithic_cycles,
                                     self.exact_cycles)

    @property
    def fast_error_pct(self) -> float:
        return cycle_count_error_pct(self.monolithic_cycles,
                                     self.fast_cycles)


#: (row name, circuit factory, instance path to extract, done output)
TARGETS: List[Tuple[str, Callable[[], Circuit], str]] = [
    ("Rocket tile (boot)", lambda: make_rocket_like_soc(40, 8),
     "rockettile"),
    ("Sha3Accel (encryption)", lambda: make_sha3_soc(40, 6), "sha3accel"),
    ("Gemmini (convolution)", lambda: make_gemmini_soc(6), "gemminiaccel"),
]


def measure_partitioned_cycles(circuit: Circuit, extract_path: str,
                               mode: str, max_cycles: int = 100_000) -> int:
    """Cycles until ``done`` in a 2-FPGA partitioned co-simulation."""
    spec = PartitionSpec(mode=mode, groups=[
        PartitionGroup.make("fpga1", [extract_path])])
    design = FireRipper(spec).compile(circuit)
    sim = design.build_simulation(QSFP_AURORA, record_outputs=True)

    def stop(s) -> bool:
        log = s.output_log.get(("base", "io_out"), [])
        return bool(log) and log[-1]["done"] == 1

    sim.run(max_cycles, stop=stop)
    log = sim.output_log[("base", "io_out")]
    for cycle, token in enumerate(log):
        if token["done"]:
            return cycle
    raise SimulationError("done never observed in partitioned run")


def run(max_cycles: int = 100_000) -> List[ValidationRow]:
    """Run the full validation grid."""
    rows: List[ValidationRow] = []
    for name, factory, path in TARGETS:
        circuit = factory()
        mono = MonolithicSimulation(circuit)
        mono_cycles = mono.run_until("done", 1,
                                     max_cycles=max_cycles).target_cycles
        exact = measure_partitioned_cycles(factory(), path, EXACT,
                                           max_cycles)
        fast = measure_partitioned_cycles(factory(), path, FAST,
                                          max_cycles)
        rows.append(ValidationRow(name, mono_cycles, exact, fast))
    return rows


def format_table(rows: List[ValidationRow]) -> str:
    lines = [f"{'target':<26}{'monolithic':>12}{'exact |err|%':>14}"
             f"{'fast |err|%':>13}"]
    for r in rows:
        exact = ("No Error" if r.exact_error_pct == 0
                 else f"{r.exact_error_pct:.2f}")
        lines.append(f"{r.name:<26}{r.monolithic_cycles:>12}"
                     f"{exact:>14}{r.fast_error_pct:>13.2f}")
    return "\n".join(lines)
