"""Fig. 12: peer-to-peer PCIe performance sweeps (AWS EC2 F1).

Same grid as Fig. 11, over the peer-to-peer PCIe transport.  Claims to
preserve: the characteristics mirror the QSFP sweep (flat exact-mode,
~2x fast-mode that fades with width), with overall rates ~1.5x lower
than the on-premises QSFP setup due to the higher link latency; peak
~1 MHz.
"""

from __future__ import annotations

from typing import List, Sequence

from ..platform.transport import PCIE_P2P
from .sweeps import SweepPoint, format_sweep, sweep_grid
from .fig11 import FREQS_MHZ, WIDTHS


def run(widths: Sequence[int] = WIDTHS,
        freqs_mhz: Sequence[float] = FREQS_MHZ,
        cycles: int = 150) -> List[SweepPoint]:
    return sweep_grid(PCIE_P2P, widths, freqs_mhz, cycles=cycles)


def format_table(points: Sequence[SweepPoint]) -> str:
    return format_sweep(points)


def peak_rate_mhz(points: Sequence[SweepPoint]) -> float:
    """Best achieved rate across the sweep (paper: ~1 MHz)."""
    return max(p.measured_hz for p in points) / 1e6
