"""Sec. V-B case study: splitting a large OoO core across two FPGAs.

Reproduces the resource-driven story of the GC40 BOOM:

* the monolithic GC40 core fails to build on one U250 (routing
  congestion at ~80% LUT utilization — our profile's congestion
  threshold encodes the paper's failed monolithic bitstream),
* splitting at the paper's point (backend + LSU | frontend + memory
  subsystem) gives ~63% / ~18% partitions that both fit,
* the partition interface carries over 7000 bits, and the exact-mode
  QSFP simulation lands near the paper's 0.2 MHz,
* an RTL-tier wide-boundary pair (3600 bits each direction, >7000
  total) is actually compiled and co-simulated in exact mode to
  demonstrate the flow at that width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import ResourceError
from ..fireripper import EXACT, FireRipper, PartitionGroup, PartitionSpec
from ..harness.analytic import analytic_rate_hz
from ..platform.estimate import core_area_to_luts
from ..platform.resources import XILINX_U250, FPGAResources
from ..platform.transport import QSFP_AURORA
from ..targets.soc import make_wide_pair
from ..uarch.params import GC40_BOOM

#: the paper's split fractions of total U250 LUTs
BACKEND_FRACTION = 0.63 / 0.81
FRONTEND_FRACTION = 0.18 / 0.81
#: boundary width of the split (paper: "over 7000 bits")
BOUNDARY_BITS = 7200


@dataclass
class GC40Result:
    """Everything Sec. V-B reports."""

    core_luts: float
    monolithic_fits: bool
    monolithic_error: Optional[str]
    backend_util: float
    frontend_util: float
    boundary_bits: int
    modeled_rate_hz: float
    cosim_rate_hz: float

    @property
    def modeled_rate_mhz(self) -> float:
        return self.modeled_rate_hz / 1e6


def run(host_freq_mhz: float = 30.0,
        cosim_cycles: int = 60) -> GC40Result:
    core_luts = GC40_BOOM.fpga_luts()

    monolithic_error = None
    monolithic_fits = True
    try:
        XILINX_U250.check_fit(FPGAResources(luts=core_luts),
                              label="monolithic GC40 BOOM")
    except ResourceError as exc:
        monolithic_fits = False
        monolithic_error = str(exc)

    backend = FPGAResources(luts=core_luts * BACKEND_FRACTION)
    frontend = FPGAResources(luts=core_luts * FRONTEND_FRACTION)
    backend_util = XILINX_U250.check_fit(
        backend, label="GC40 backend + LSU")["luts"]
    frontend_util = XILINX_U250.check_fit(
        frontend, label="GC40 frontend + memory")["luts"]

    modeled = analytic_rate_hz(EXACT, BOUNDARY_BITS // 2, QSFP_AURORA,
                               host_freq_mhz)

    # RTL-tier demonstration at the same boundary width
    circuit = make_wide_pair(BOUNDARY_BITS // 2, comb_boundary=True)
    spec = PartitionSpec(mode=EXACT, groups=[
        PartitionGroup.make("backend", ["right"])])
    design = FireRipper(spec).compile(circuit)
    sim = design.build_simulation(QSFP_AURORA,
                                  host_freq_mhz=host_freq_mhz)
    cosim_rate = sim.run(cosim_cycles).rate_hz

    return GC40Result(
        core_luts=core_luts,
        monolithic_fits=monolithic_fits,
        monolithic_error=monolithic_error,
        backend_util=backend_util,
        frontend_util=frontend_util,
        boundary_bits=BOUNDARY_BITS,
        modeled_rate_hz=modeled,
        cosim_rate_hz=cosim_rate,
    )


def format_table(r: GC40Result) -> str:
    lines = [
        "GC40 BOOM split-core case study (Sec. V-B)",
        f"  GC40 core estimate:        {r.core_luts / 1e6:.2f} M LUTs "
        f"({r.core_luts / XILINX_U250.usable.luts:.0%} of a U250)",
        f"  monolithic build:          "
        f"{'fits' if r.monolithic_fits else 'FAILS (congestion)'}"
        + (f" -- {r.monolithic_error}" if r.monolithic_error else ""),
        f"  backend + LSU partition:   {r.backend_util:.0%} of U250 LUTs "
        f"(paper: 63%)",
        f"  frontend + mem partition:  {r.frontend_util:.0%} of U250 LUTs "
        f"(paper: 18%)",
        f"  partition interface:       {r.boundary_bits} bits "
        f"(paper: > 7000)",
        f"  modeled exact-mode rate:   {r.modeled_rate_mhz:.3f} MHz "
        f"(paper: 0.2 MHz)",
        f"  RTL-tier co-sim at width:  {r.cosim_rate_hz / 1e6:.3f} MHz",
    ]
    return "\n".join(lines)
