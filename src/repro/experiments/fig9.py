"""Fig. 9: the leaky-DMA effect vs forwarding-core count and topology.

Sweeps 1-12 forwarding cores for crossbar and ring interconnects and
reports the NIC's average request-to-response read/write latencies, as
measured by the in-NIC counters.  Claims to preserve: both latencies
grow with core count as the DDIO ways thrash; the crossbar is cheaper
per transaction under low load but its write latency grows much faster
past ~6 cores than the ring's.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..uarch.ddio import RING, XBAR, LeakyDMAResult, sweep

CORE_COUNTS = (1, 2, 4, 6, 8, 10, 12)


def run(core_counts: Sequence[int] = CORE_COUNTS,
        packets_per_core: int = 300) -> List[LeakyDMAResult]:
    """The Fig. 9 grid: (topology x core count)."""
    return sweep(list(core_counts), topologies=(XBAR, RING),
                 packets_per_core=packets_per_core)


def format_table(results: Sequence[LeakyDMAResult]) -> str:
    lines = [f"{'topology':<8}{'cores':>6}{'Rd Lat (ns)':>13}"
             f"{'Wr Lat (ns)':>13}{'IO rd hit':>11}{'CPU hit':>9}"]
    for r in results:
        lines.append(
            f"{r.topology:<8}{r.n_cores:>6}{r.nic_read_latency_ns:>13.1f}"
            f"{r.nic_write_latency_ns:>13.1f}{r.io_read_hit_rate:>11.2f}"
            f"{r.cpu_hit_rate:>9.2f}")
    return "\n".join(lines)


def crossover_core_count(results: Sequence[LeakyDMAResult]) -> int:
    """First core count at which the crossbar's write latency exceeds the
    ring's (the paper's ~6-core crossover)."""
    by_key = {(r.topology, r.n_cores): r for r in results}
    counts = sorted({r.n_cores for r in results})
    for n in counts:
        xbar = by_key.get((XBAR, n))
        ring = by_key.get((RING, n))
        if xbar and ring and xbar.nic_write_latency_ns \
                > ring.nic_write_latency_ns:
            return n
    return -1
