"""Experiment harnesses: one module per paper table/figure.

Each module exposes ``run(...)`` returning structured results and
``format_table(results)`` rendering the same rows/series the paper
reports.  ``python -m repro.experiments`` regenerates everything.

==================  ==============================================
module              paper artefact
==================  ==============================================
``table1``          Table I   core parameters + area model
``table2``          Table II  cycle-exactness validation
``fig7``            Fig. 7    Embench runtimes (3 cores)
``fig8``            Fig. 8    CPI stacks
``fig9``            Fig. 9    leaky-DMA latency scaling
``fig10``           Fig. 10   Go GC tail latency
``fig11``           Fig. 11   QSFP performance sweeps
``fig12``           Fig. 12   PCIe peer-to-peer sweeps
``fig13``           Fig. 13   FPGA-count (ring) sweeps
``fig14``           Fig. 14   FAME-5 amortization
``casestudy_24core``  Sec. V-A  24-core SoC + RTL bug hunt
``casestudy_gc40``    Sec. V-B  split GC40 BOOM core
==================  ==============================================
"""

from . import (
    casestudy_24core,
    casestudy_gc40,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    table1,
    table2,
)

__all__ = [
    "table1", "table2", "fig7", "fig8", "fig9", "fig10",
    "fig11", "fig12", "fig13", "fig14",
    "casestudy_24core", "casestudy_gc40",
]
