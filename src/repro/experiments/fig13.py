"""Fig. 13: simulation rate vs the number of FPGAs in a ring.

A six-tile ring-NoC SoC is split across 2-5 FPGAs with
NoC-partition-mode; the interface width stays constant (it is always one
ring hop), but the paper measures a mild rate degradation as FPGAs are
added "due to minor timing issues regarding token exchange".  We model
that slack as a per-target-cycle advance overhead that grows with the
ring size (:data:`~repro.harness.analytic.RING_SYNC_JITTER_NS` per
FPGA beyond two), applied identically in the co-simulation's timing
overlay and the analytic model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..fireripper import FAST, FireRipper, NoCPartitionSpec, PartitionSpec
from ..harness.analytic import RING_SYNC_JITTER_NS, analytic_rate_hz
from ..platform.transport import QSFP_AURORA
from ..targets.noc import flit_width
from ..targets.soc import make_ring_noc_soc

#: router groups for each FPGA count (6 tiles + 1 hub = 7 routers; the
#: base partition always keeps the hub router)
ROUTER_GROUPS: Dict[int, List[List[int]]] = {
    2: [[0, 1, 2, 3, 4, 5]],
    3: [[0, 1, 2], [3, 4, 5]],
    4: [[0, 1], [2, 3], [4, 5]],
    5: [[0, 1], [2, 3], [4], [5]],
}


@dataclass
class FpgaCountPoint:
    """One bar of Fig. 13."""

    n_fpgas: int
    host_freq_mhz: float
    measured_hz: float
    predicted_hz: float


def run(fpga_counts: Sequence[int] = (2, 3, 4, 5),
        freqs_mhz: Sequence[float] = (30.0, 90.0),
        cycles: int = 120) -> List[FpgaCountPoint]:
    """Measure the ring co-simulation rate per FPGA count and frequency."""
    points: List[FpgaCountPoint] = []
    for freq in freqs_mhz:
        for n in fpga_counts:
            circuit = make_ring_noc_soc(6, messages_per_tile=4)
            spec = PartitionSpec(
                mode=FAST,
                noc=NoCPartitionSpec.make(ROUTER_GROUPS[n]))
            design = FireRipper(spec).compile(circuit)
            overhead = max(0, n - 2) * RING_SYNC_JITTER_NS
            sim = design.build_simulation(
                QSFP_AURORA, host_freq_mhz=freq,
                advance_overhead_ns=overhead)
            result = sim.run(cycles)
            width = flit_width(7) + 2  # flit + valid + credit
            predicted = analytic_rate_hz(FAST, width, QSFP_AURORA, freq,
                                         num_fpgas=n)
            points.append(FpgaCountPoint(n, freq, result.rate_hz,
                                         predicted))
    return points


def format_table(points: Sequence[FpgaCountPoint]) -> str:
    lines = [f"{'FPGAs':>6}{'freq(MHz)':>11}{'measured(MHz)':>15}"
             f"{'analytic(MHz)':>15}"]
    for p in points:
        lines.append(f"{p.n_fpgas:>6}{p.host_freq_mhz:>11.0f}"
                     f"{p.measured_hz / 1e6:>15.3f}"
                     f"{p.predicted_hz / 1e6:>15.3f}")
    return "\n".join(lines)
