"""Sec. V-A case study: a 24-core SoC across five FPGAs.

Four parts, mirroring the paper:

1. **Scale**: a 24-tile ring-NoC SoC is partitioned across five FPGAs
   with NoC-partition-mode (six tiles per FPGA, the SoC subsystem on the
   fifth), tiles FAME-5 threaded; the full co-simulation boots, runs
   cross-NoC traffic, and reports an achieved rate (paper: 0.58 MHz).
2. **Bug hunt**: the BOOM tiles carry a planted RTL bug that only
   manifests under "larger binaries" (wide right shifts).  Booting with
   the small workload succeeds; loading the large binary trips the
   checksum validation — the analogue of the paper's SBI trap at 3e9
   cycles.
3. **Core swap**: replacing the buggy cores with fixed ("in-order")
   cores and rerunning the same large binary succeeds, isolating the bug
   to the core RTL, exactly the paper's methodology.
4. **Speedup**: time-to-bug at the partitioned-FPGA rate vs a commercial
   software RTL simulator (paper: <2 hours vs weeks, 460x).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..fireripper import FAST, FireRipper, NoCPartitionSpec, PartitionSpec
from ..harness.analytic import analytic_rate_hz
from ..harness.software_sim import (
    luts_to_gate_equivalents,
    software_rtl_sim_rate_hz,
)
from ..platform.transport import QSFP_AURORA
from ..targets.noc import flit_width
from ..targets.programs import (
    large_binary_program,
    large_binary_reference_checksum,
    sink_program,
)
from ..targets.soc import make_ring_noc_soc
from ..uarch.params import LARGE_BOOM

#: paper constants for the headline comparison
PAPER_BUG_CYCLES = 3_000_000_000
PAPER_SW_RATE_HZ = 1_260.0
N_CORES = 24
FPGAS = 5


@dataclass
class CaseStudy24Result:
    """Everything Sec. V-A reports."""

    rtl_tiles: int                       # tiles in the RTL-tier co-sim
    mini_rate_hz: float                  # measured on that co-sim
    modeled_rate_hz: float               # analytic, full-scale config
    sw_rate_hz: float                    # software RTL sim model
    speedup: float
    hours_to_bug_fireaxe: float
    days_to_bug_software: float
    bug_detected_buggy: bool
    bug_detected_fixed: bool
    small_workload_ok_buggy: bool
    partition_groups: Dict[str, List[str]]


def _run_ring(n_tiles: int, shift_bug: bool, large_binary: bool,
              fpga_groups: List[List[int]],
              max_cycles: int = 30_000) -> Tuple[bool, float, Dict]:
    """Partitioned run; returns (checksum_ok, rate_hz, groups)."""
    count = 6
    if large_binary:
        programs = [large_binary_program(count)
                    for _ in range(n_tiles)]
        expected = (n_tiles * large_binary_reference_checksum(count)) \
            & 0xFFFF
        messages = n_tiles  # one checksum message per tile
    else:
        from ..targets.programs import sender_program
        per_tile = 2
        programs = [sender_program(per_tile) for _ in range(n_tiles)]
        expected = (n_tiles * sum(range(1, per_tile + 1))) & 0xFFFF
        messages = n_tiles * per_tile
    hub = sink_program(messages)

    from ..targets import soc as socmod
    from ..targets.tinycore import make_tile

    # build the SoC with optionally buggy tiles: patch make_tile's bug
    # flag by building tiles explicitly through the soc builder's
    # program list plus a monkeypatch-free path: make_ring_noc_soc
    # accepts programs; bug injection needs tile construction, so we
    # wrap it here.
    circuit = _make_ring_soc_with_bug(n_tiles, programs, hub, shift_bug)

    spec = PartitionSpec(mode=FAST,
                         noc=NoCPartitionSpec.make(fpga_groups))
    design = FireRipper(spec).compile(circuit)
    sim = design.build_simulation(QSFP_AURORA, host_freq_mhz=30.0,
                                  record_outputs=True)

    def stop(s) -> bool:
        log = s.output_log.get(("base", "io_out"), [])
        return bool(log) and log[-1]["done"] == 1

    result = sim.run(max_cycles, stop=stop)
    log = sim.output_log.get(("base", "io_out"), [])
    finished = bool(log) and log[-1]["done"] == 1
    ok = finished and (log[-1]["result"] == expected)
    return ok, result.rate_hz, design.extracted.group_members


def _make_ring_soc_with_bug(n_tiles, programs, hub_program, shift_bug):
    """Ring SoC builder with per-tile bug injection."""
    from ..errors import IRError
    from ..firrtl.builder import ModuleBuilder, make_circuit, mux
    from ..targets.noc import PAYLOAD, make_converter, make_router
    from ..targets.tinycore import make_tile

    n_routers = n_tiles + 1
    hub_id = n_tiles
    library = []
    b = ModuleBuilder(f"RingSoC_{n_tiles}t_bug{int(shift_bug)}")
    done = b.output("done", 1)
    result = b.output("result", PAYLOAD)
    routers = []
    for i in range(n_routers):
        rmod, rlib = make_router(i, n_routers)
        library.append(rmod)
        library.extend(rlib)
        routers.append(b.inst(f"router{i}", rmod))

    def attach(idx, program, dest, label, bug):
        tmod, tlib = make_tile(program, name=f"{label}Tile{idx}",
                               shift_bug=bug)
        cmod = make_converter(dest, n_routers,
                              name=f"Converter{idx}_n{n_routers}")
        library.extend([tmod, cmod])
        library.extend(tlib)
        t = b.inst(f"tile{idx}", tmod)
        c = b.inst(f"conv{idx}", cmod)
        r = routers[idx]
        b.connect(c["tile_in_valid"], t["net_out_valid"])
        b.connect(c["tile_in_bits"], t["net_out_bits"])
        b.connect(t["net_out_ready"], c["tile_in_ready"])
        b.connect(t["net_in_valid"], c["tile_out_valid"])
        b.connect(t["net_in_bits"], c["tile_out_bits"])
        b.connect(c["tile_out_ready"], t["net_in_ready"])
        b.connect(r["local_in_valid"], c["net_out_valid"])
        b.connect(r["local_in_bits"], c["net_out_bits"])
        b.connect(c["net_out_ready"], r["local_in_ready"])
        b.connect(c["net_in_valid"], r["local_out_valid"])
        b.connect(c["net_in_bits"], r["local_out_bits"])
        b.connect(r["local_out_ready"], c["net_in_ready"])
        return t

    for i in range(n_tiles):
        attach(i, programs[i], hub_id, "Core", shift_bug)
    hub = attach(hub_id, hub_program, 0, "Hub", False)
    for i in range(n_routers):
        nxt = routers[(i + 1) % n_routers]
        cur = routers[i]
        b.connect(nxt["ring_in_valid"], cur["ring_out_valid"])
        b.connect(nxt["ring_in_bits"], cur["ring_out_bits"])
        b.connect(cur["ring_credit_in"], nxt["ring_credit_out"])
    b.connect(done, hub["done"])
    b.connect(result, hub["result"])
    return make_circuit(b.build(), library)


def modeled_full_scale_rate_hz(host_freq_mhz: float = 30.0) -> float:
    """Analytic rate of the full 24-core, 5-FPGA, FAME-5x6 config."""
    width = flit_width(N_CORES + 1) + 2
    return analytic_rate_hz("fast", width, QSFP_AURORA, host_freq_mhz,
                            threads=6, num_fpgas=FPGAS)


def software_baseline_rate_hz() -> float:
    """Commercial software RTL simulator rate for the 24-core SoC."""
    luts = N_CORES * LARGE_BOOM.fpga_luts()
    return software_rtl_sim_rate_hz(luts_to_gate_equivalents(luts))


def run(mini_tiles: int = 24,
        max_cycles: int = 60_000) -> CaseStudy24Result:
    """Run the case study.

    The RTL-tier co-simulation runs ``mini_tiles`` TinyCore tiles
    (default: the paper's full 24, split across the same five FPGAs);
    the headline BOOM-scale rate and speedup use the calibrated models
    since TinyCore is far smaller than a BOOM core.
    """
    per = max(1, mini_tiles // 4)
    groups = [list(range(i * per, (i + 1) * per)) for i in range(4)]
    groups[-1] = list(range(3 * per, mini_tiles))

    small_ok, rate_small, members = _run_ring(
        mini_tiles, shift_bug=True, large_binary=False,
        fpga_groups=groups, max_cycles=max_cycles)
    large_ok_buggy, _, _ = _run_ring(
        mini_tiles, shift_bug=True, large_binary=True,
        fpga_groups=groups, max_cycles=max_cycles)
    large_ok_fixed, _, _ = _run_ring(
        mini_tiles, shift_bug=False, large_binary=True,
        fpga_groups=groups, max_cycles=max_cycles)

    modeled = modeled_full_scale_rate_hz()
    sw_rate = software_baseline_rate_hz()
    speedup = modeled / sw_rate
    return CaseStudy24Result(
        rtl_tiles=mini_tiles,
        mini_rate_hz=rate_small,
        modeled_rate_hz=modeled,
        sw_rate_hz=sw_rate,
        speedup=speedup,
        hours_to_bug_fireaxe=PAPER_BUG_CYCLES / modeled / 3600.0,
        days_to_bug_software=PAPER_BUG_CYCLES / sw_rate / 86_400.0,
        bug_detected_buggy=not large_ok_buggy,
        bug_detected_fixed=not large_ok_fixed,
        small_workload_ok_buggy=small_ok,
        partition_groups={k: sorted(v) for k, v in members.items()},
    )


def format_table(r: CaseStudy24Result) -> str:
    lines = [
        "24-core SoC case study (Sec. V-A)",
        f"  RTL co-sim rate ({r.rtl_tiles} tiles, 5 FPGAs): "
        f"{r.mini_rate_hz / 1e6:.3f} MHz",
        f"  modeled 24-core rate (FAME-5 x6):      "
        f"{r.modeled_rate_hz / 1e6:.3f} MHz   (paper: 0.58 MHz)",
        f"  software RTL simulator:                "
        f"{r.sw_rate_hz / 1e3:.2f} kHz    (paper: 1.26 kHz)",
        f"  speedup:                               "
        f"{r.speedup:.0f}x       (paper: 460x)",
        f"  time to 3e9-cycle bug, FireAxe:        "
        f"{r.hours_to_bug_fireaxe:.1f} hours (paper: < 2 hours)",
        f"  time to 3e9-cycle bug, software sim:   "
        f"{r.days_to_bug_software:.0f} days  (paper: weeks)",
        f"  small workload boots on buggy cores:   "
        f"{r.small_workload_ok_buggy}",
        f"  large binary trips bug (buggy cores):  "
        f"{r.bug_detected_buggy}",
        f"  large binary passes (fixed cores):     "
        f"{not r.bug_detected_fixed}",
    ]
    return "\n".join(lines)
