"""Fig. 7: Embench runtimes for Large BOOM, GC40 BOOM, and the Xeon.

Runtimes extrapolate each workload's full dynamic instruction count from
a modelled sample, at the paper's common 3.4 GHz clock.  The headline
claims to preserve: GC40 beats Large BOOM everywhere (average IPC uplift
~16%), with the largest win on fetch-bound ``nettle-aes`` (~56%) and the
smallest on execution-bound ``nbody`` (~2%); the Xeon is fastest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..uarch.ooo import OoOCoreModel
from ..uarch.params import CoreParams, GC40_BOOM, GC_XEON, LARGE_BOOM
from ..uarch.workloads import EMBENCH, Workload

CORES = (LARGE_BOOM, GC40_BOOM, GC_XEON)
CLOCK_GHZ = 3.4


@dataclass
class RuntimeRow:
    """Per-benchmark runtimes (ms) and IPCs per core."""

    workload: str
    runtime_ms: Dict[str, float]
    ipc: Dict[str, float]

    def uplift_pct(self, base: str = "Large BOOM",
                   better: str = "GC40 BOOM") -> float:
        return (self.ipc[better] / self.ipc[base] - 1.0) * 100.0


def run(workloads: Sequence[Workload] = tuple(EMBENCH),
        cores: Sequence[CoreParams] = CORES,
        n_instr: int = 40_000, seed: int = 7) -> List[RuntimeRow]:
    """Model every (workload, core) pair."""
    rows: List[RuntimeRow] = []
    for wl in workloads:
        runtimes: Dict[str, float] = {}
        ipcs: Dict[str, float] = {}
        for core in cores:
            res = OoOCoreModel(core).run(wl, n_instr=n_instr, seed=seed)
            runtimes[core.name] = res.runtime_seconds(
                wl.instructions, CLOCK_GHZ) * 1e3
            ipcs[core.name] = res.ipc
        rows.append(RuntimeRow(wl.name, runtimes, ipcs))
    return rows


def average_ipc_uplift_pct(rows: Sequence[RuntimeRow]) -> float:
    """GC40 over Large BOOM, averaged across benchmarks (paper: 15.8%)."""
    return sum(r.uplift_pct() for r in rows) / len(rows)


def format_table(rows: Sequence[RuntimeRow]) -> str:
    names = [c.name for c in CORES]
    header = f"{'benchmark':<16}" + "".join(
        f"{n + ' (ms)':>16}" for n in names) + f"{'GC40 uplift':>13}"
    lines = [header]
    for r in rows:
        line = f"{r.workload:<16}" + "".join(
            f"{r.runtime_ms[n]:>16.2f}" for n in names)
        line += f"{r.uplift_pct():>12.1f}%"
        lines.append(line)
    lines.append(f"\naverage GC40 IPC uplift: "
                 f"{average_ipc_uplift_pct(rows):.1f}% (paper: 15.8%)")
    return "\n".join(lines)
