"""Fig. 10: garbage-collection tail latency in the Go ticker benchmark.

Reports p95/p99 tick latency across the GOMAXPROCS x affinity grid.
Claims to preserve: GOMAXPROCS=1 has a very high 99% tail (the GC worker
serializes with the main goroutine); with more OS threads the tail drops;
and — the surprising result — pinning the application to a *single* core
beats spreading it across GOMAXPROCS cores, because cache affinity on a
weak memory subsystem outweighs the parallelism.

Also includes the paper's Xeon NUMA cross-check: with GOMAXPROCS=2,
allocating two cores from one NUMA node gives a lower p99 than two cores
from different NUMA nodes (28 ms vs 42 ms in the paper), corroborating
the coherence-cost hypothesis.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..uarch.golang import GoGCConfig, GoGCResult, fig10_grid, run_benchmark
from ..uarch.sched import AffinityCostModel


def run(duration_ms: float = 400.0) -> List[GoGCResult]:
    """The Fig. 10 grid."""
    return fig10_grid(duration_ms=duration_ms)


def format_table(results: Sequence[GoGCResult]) -> str:
    lines = [f"{'configuration':<28}{'p95 (ms)':>10}{'p99 (ms)':>10}"]
    for r in results:
        lines.append(f"{r.config.label:<28}{r.p95_ms:>10.3f}"
                     f"{r.p99_ms:>10.3f}")
    return "\n".join(lines)


def xeon_numa_comparison(duration_ms: float = 2_000.0
                         ) -> Tuple[float, float]:
    """The Sec. V-D Xeon cross-check: GOMAXPROCS=2 with both cores on one
    NUMA node vs split across nodes; returns (same_numa_p99_ms,
    cross_numa_p99_ms).  The Xeon runs a much larger heap, so the GC and
    migration magnitudes scale up; cross-NUMA coherence roughly doubles
    the remote penalties.
    """
    base = dict(gomaxprocs=2, affinity_cores=2, duration_ms=duration_ms,
                tick_work_us=12.0, gc_period_us=250_000.0,
                gc_cpu_us=120_000.0, stw_us=2_500.0, assist_us=30.0)
    same_numa = run_benchmark(
        GoGCConfig(**base),
        AffinityCostModel(local_wakeup_us=2.0, remote_wakeup_us=9.0,
                          coherence_inflation=2.4,
                          migration_inflation=8.0,
                          migration_window_us=26_000.0,
                          migration_period_ticks=90))
    cross_numa = run_benchmark(
        GoGCConfig(**base),
        AffinityCostModel(local_wakeup_us=2.0, remote_wakeup_us=22.0,
                          coherence_inflation=4.8,
                          migration_inflation=14.0,
                          migration_window_us=40_000.0,
                          migration_period_ticks=90))
    return same_numa.p99_ms, cross_numa.p99_ms
