"""Fig. 11: QSFP performance sweeps.

Simulation rate over QSFP direct-attach cables as a function of the
partition-interface width, the bitstream frequency, and the partitioning
mode.  Claims to preserve: exact-mode stays relatively flat (the double
link crossing dominates); fast-mode is ~2x faster at narrow interfaces;
the fast-mode advantage fades once the interface is wider than ~1500
bits because (de)serialization catches up with link latency; higher
bitstream frequencies raise everything; peak rate ~1.6 MHz.
"""

from __future__ import annotations

from typing import List, Sequence

from ..platform.transport import QSFP_AURORA
from .sweeps import SweepPoint, format_sweep, sweep_grid

WIDTHS = (128, 512, 1024, 1500, 2200, 3200, 4500)
FREQS_MHZ = (10.0, 30.0, 50.0, 70.0, 90.0)


def run(widths: Sequence[int] = WIDTHS,
        freqs_mhz: Sequence[float] = FREQS_MHZ,
        cycles: int = 150) -> List[SweepPoint]:
    return sweep_grid(QSFP_AURORA, widths, freqs_mhz, cycles=cycles)


def format_table(points: Sequence[SweepPoint]) -> str:
    return format_sweep(points)


def peak_rate_mhz(points: Sequence[SweepPoint]) -> float:
    """Best achieved rate across the sweep (paper: ~1.6 MHz)."""
    return max(p.measured_hz for p in points) / 1e6
