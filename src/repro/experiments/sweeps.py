"""Shared machinery for the performance sweeps (Figs. 11-14).

``measure_rate`` runs an actual token-level partitioned co-simulation of
a width-parametric target under a transport model and reports the
achieved target frequency; ``predicted_rate`` is the closed-form model.
Figures use both: the co-simulation is the measurement, the analytic
model is FireRipper's compile-time feedback, and tests assert they agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..fireripper import EXACT, FAST, FireRipper, PartitionGroup, PartitionSpec
from ..harness.analytic import analytic_rate_hz
from ..platform.transport import TransportModel
from ..targets.soc import make_wide_pair


@dataclass
class SweepPoint:
    """One point of a performance sweep."""

    mode: str
    width_bits: int
    host_freq_mhz: float
    transport: str
    measured_hz: float
    predicted_hz: float

    @property
    def measured_mhz(self) -> float:
        return self.measured_hz / 1e6


def measure_rate(width: int, mode: str, transport: TransportModel,
                 host_freq_mhz: float, cycles: int = 150) -> float:
    """Achieved simulation rate (Hz) for a two-FPGA partition whose
    boundary carries ``width`` bits in each direction."""
    circuit = make_wide_pair(width, comb_boundary=(mode == EXACT))
    spec = PartitionSpec(mode=mode, groups=[
        PartitionGroup.make("fpga1", ["right"])])
    design = FireRipper(spec).compile(circuit)
    sim = design.build_simulation(transport, host_freq_mhz=host_freq_mhz)
    result = sim.run(cycles)
    return result.rate_hz


def sweep_grid(transport: TransportModel,
               widths: Sequence[int],
               freqs_mhz: Sequence[float],
               modes: Sequence[str] = (EXACT, FAST),
               cycles: int = 150) -> List[SweepPoint]:
    """The Fig. 11/12 grid: mode x width x bitstream frequency."""
    points: List[SweepPoint] = []
    for mode in modes:
        for freq in freqs_mhz:
            for width in widths:
                measured = measure_rate(width, mode, transport, freq,
                                        cycles=cycles)
                predicted = analytic_rate_hz(mode, width, transport, freq)
                points.append(SweepPoint(mode, width, freq,
                                         transport.name, measured,
                                         predicted))
    return points


def format_sweep(points: Sequence[SweepPoint]) -> str:
    lines = [f"{'mode':<7}{'freq(MHz)':>10}{'width(b)':>10}"
             f"{'measured(MHz)':>15}{'analytic(MHz)':>15}"]
    for p in points:
        lines.append(f"{p.mode:<7}{p.host_freq_mhz:>10.0f}"
                     f"{p.width_bits:>10}{p.measured_hz / 1e6:>15.3f}"
                     f"{p.predicted_hz / 1e6:>15.3f}")
    return "\n".join(lines)


def fast_over_exact_speedup(points: Sequence[SweepPoint],
                            width: int, freq: float) -> float:
    """Fast-mode speedup over exact-mode at one grid point."""
    by_key = {(p.mode, p.width_bits, p.host_freq_mhz): p for p in points}
    fast = by_key[(FAST, width, freq)]
    exact = by_key[(EXACT, width, freq)]
    return fast.measured_hz / exact.measured_hz
