#!/usr/bin/env python3
"""NoC-partition-mode: split a multicore ring SoC across FPGAs by
router indices (the Sec. V-A workflow at example scale).

A six-core ring-NoC SoC (TinyCore tiles streaming to a hub over a
credit-based NoC) is split across three FPGAs by listing router indices —
FireRipper automatically collects the protocol converters and tiles
hanging off each router group, exactly as Fig. 4 describes.

Run:  python examples/partition_soc.py
"""

from repro.fireripper import FAST, FireRipper, NoCPartitionSpec, PartitionSpec
from repro.harness import MonolithicSimulation
from repro.platform import QSFP_AURORA, XILINX_U250
from repro.targets.soc import make_ring_noc_soc

N_TILES = 6
MESSAGES = 4


def main():
    circuit = make_ring_noc_soc(N_TILES, messages_per_tile=MESSAGES)
    stats = circuit.stats()
    print(f"ring SoC: {N_TILES} tiles + hub, "
          f"{stats['modules']} modules, {stats['registers']} registers, "
          f"{stats['memories']} memories")

    mono = MonolithicSimulation(circuit)
    ref = mono.run_until("done", 1, max_cycles=50_000)
    expected = N_TILES * sum(range(1, MESSAGES + 1))
    print(f"monolithic: done at cycle {ref.target_cycles}, "
          f"hub checksum {mono.sim.peek('result')} (expected {expected})")

    # split by router indices: routers 0-2 on one FPGA, 3-5 on another,
    # the hub router and SoC subsystem stay on the base FPGA
    spec = PartitionSpec(mode=FAST,
                         noc=NoCPartitionSpec.make([[0, 1, 2],
                                                    [3, 4, 5]]))
    design = FireRipper(spec).compile(
        circuit, profile=XILINX_U250, transport=QSFP_AURORA,
        host_freq_mhz=30.0)

    print("\nautomatically selected partition groups:")
    for group, members in sorted(design.extracted.group_members.items()):
        print(f"  {group}: {', '.join(sorted(members))}")
    print()
    print(design.report.to_text())

    sim = design.build_simulation(QSFP_AURORA, host_freq_mhz=30.0,
                                  record_outputs=True)

    def stop(s):
        log = s.output_log.get(("base", "io_out"), [])
        return bool(log) and log[-1]["done"] == 1

    result = sim.run(50_000, stop=stop)
    log = sim.output_log[("base", "io_out")]
    done_cycle = next(i for i, t in enumerate(log) if t["done"])
    print(f"\npartitioned across {len(design.partitions)} FPGAs: "
          f"done at cycle {done_cycle}, checksum {log[-1]['result']}, "
          f"rate {result.rate_mhz:.2f} MHz")
    assert log[-1]["result"] == expected


if __name__ == "__main__":
    main()
