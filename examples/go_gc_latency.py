#!/usr/bin/env python3
"""Go garbage-collection tail latency (Sec. V-D / Fig. 10).

Runs the 10 us ticker benchmark across the GOMAXPROCS x affinity grid
and prints the tails, including the paper's surprising result (pinning
to one core beats spreading) and the Xeon NUMA cross-check.

Run:  python examples/go_gc_latency.py
"""

from repro.experiments.fig10 import xeon_numa_comparison
from repro.uarch.golang import fig10_grid


def main():
    print("Go ticker benchmark: 10us tick, allocation-heavy handler, "
          "GC stressed\n")
    results = fig10_grid(duration_ms=400.0)
    print(f"{'configuration':<28}{'p95 (ms)':>10}{'p99 (ms)':>10}")
    for r in results:
        print(f"{r.config.label:<28}{r.p95_ms:>10.3f}{r.p99_ms:>10.3f}")

    by = {(r.config.gomaxprocs, r.config.affinity_cores): r
          for r in results}
    print(f"\nGOMAXPROCS=1 p99 is "
          f"{by[(1, 1)].p99_ms / by[(2, 2)].p99_ms:.0f}x the "
          f"2-thread tail: the GC worker serializes with the ticker.")
    print("pinned-to-one-core beats spread for 2 and 4 threads: "
          "cache affinity on a\nweak memory subsystem outweighs the "
          "parallelism (the paper's hypothesis).")

    same, cross = xeon_numa_comparison()
    print(f"\nXeon NUMA cross-check (GOMAXPROCS=2): "
          f"same-node p99 {same:.0f} ms vs cross-node {cross:.0f} ms "
          f"(paper: 28 vs 42)")


if __name__ == "__main__":
    main()
