#!/usr/bin/env python3
"""The leaky-DMA study (Sec. V-C / Fig. 9) as a runnable script.

Sweeps forwarding-core counts over both bus topologies and prints the
NIC's request-to-response latency counters, then explains what happened
to the DDIO ways.

Run:  python examples/leaky_dma.py
"""

from repro.uarch.ddio import RING, XBAR, LeakyDMAExperiment, sweep


def main():
    counts = (1, 2, 4, 6, 8, 10, 12)
    print("server SoC: 128 KiB LLC, 8 ways, 2 DDIO ways; "
          "1500B packets, 128 descriptors per core\n")
    results = sweep(counts, packets_per_core=200)

    print(f"{'topology':<8}{'cores':>6}{'Rd Lat(ns)':>12}"
          f"{'Wr Lat(ns)':>12}{'CPU hit':>9}{'unread evictions':>18}")
    for r in results:
        print(f"{r.topology:<8}{r.n_cores:>6}"
              f"{r.nic_read_latency_ns:>12.1f}"
              f"{r.nic_write_latency_ns:>12.1f}"
              f"{r.cpu_hit_rate:>9.2f}"
              f"{r.llc_stats['io_evictions_of_unread']:>18}")

    by = {(r.topology, r.n_cores): r for r in results}
    x1 = by[(XBAR, counts[0])].nic_write_latency_ns
    x12 = by[(XBAR, counts[-1])].nic_write_latency_ns
    r12 = by[(RING, counts[-1])].nic_write_latency_ns
    print(f"\nwrite latency grew {x12 / x1:.1f}x from 1 to 12 cores "
          f"on the crossbar;")
    print(f"at 12 cores the crossbar is {x12 / r12:.1f}x worse than "
          f"the ring (single LLC port saturates; banked ring scales).")
    print("the leak: packets land in 2 DDIO ways; once in-flight "
          "buffers outgrow them,\narriving packets evict unprocessed "
          "ones and every access falls through to DRAM.")


if __name__ == "__main__":
    main()
