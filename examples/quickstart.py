#!/usr/bin/env python3
"""Quickstart: build a design, partition it with FireRipper, co-simulate.

This walks the paper's core flow end to end on a small SoC:

1. author a target design in the FIRRTL-like IR (a producer-consumer
   pair over a ready-valid link),
2. simulate it monolithically (the FireSim baseline),
3. partition the consumer onto its own "FPGA" with FireRipper in both
   exact-mode and fast-mode,
4. co-simulate over the QSFP transport and compare cycle counts and
   achieved simulation rates.

Run:  python examples/quickstart.py
"""

from repro.firrtl import ModuleBuilder, make_circuit
from repro.fireripper import EXACT, FAST, FireRipper, PartitionGroup, PartitionSpec
from repro.harness import MonolithicSimulation
from repro.platform import QSFP_AURORA, XILINX_U250
from repro.targets import make_rv_consumer, make_rv_producer


def build_design():
    """A producer streaming 30 values to a checksum consumer."""
    producer = make_rv_producer(16, count=30)
    consumer = make_rv_consumer(16, stall_mask=1)  # consumer stalls 50%
    b = ModuleBuilder("QuickstartSoC")
    done = b.output("done", 1)
    checksum = b.output("checksum", 32)
    p = b.inst("producer", producer)
    c = b.inst("consumer", consumer)
    b.connect(c["in_valid"], p["out_valid"])
    b.connect(c["in_bits"], p["out_bits"])
    b.connect(p["out_ready"], c["in_ready"])
    b.connect(done, p["done"])
    b.connect(checksum, c["sum"])
    return make_circuit(b.build(), [producer, consumer])


def main():
    circuit = build_design()
    print(f"design: {circuit.top} with modules {sorted(circuit.modules)}")

    # 1. monolithic baseline
    mono = MonolithicSimulation(circuit, host_freq_mhz=30.0)
    ref = mono.run_until("done", 1)
    print(f"\nmonolithic: done after {ref.target_cycles} cycles, "
          f"checksum={mono.sim.peek('checksum')} "
          f"(rate: {ref.rate_hz / 1e6:.0f} MHz — one FPGA, FMR ~ 1)")

    # 2. partition the consumer out, both modes
    for mode in (EXACT, FAST):
        spec = PartitionSpec(mode=mode, groups=[
            PartitionGroup.make("fpga1", ["consumer"])])
        design = FireRipper(spec).compile(
            circuit, profile=XILINX_U250, transport=QSFP_AURORA,
            host_freq_mhz=30.0)
        print(f"\n--- {mode}-mode ---")
        print(design.report.to_text())

        sim = design.build_simulation(QSFP_AURORA, host_freq_mhz=30.0,
                                      record_outputs=True)

        def stop(s):
            log = s.output_log.get(("base", "io_out"), [])
            return bool(log) and log[-1]["done"] == 1

        sim.run(10_000, stop=stop)
        log = sim.output_log[("base", "io_out")]
        done_cycle = next(i for i, t in enumerate(log) if t["done"])
        # the producer finishes first; run a little longer so the
        # consumer drains the queue tail
        result = sim.run(done_cycle + 40)
        log = sim.output_log[("base", "io_out")]
        checksum = log[-1]["checksum"]
        err = abs(done_cycle - ref.target_cycles) / ref.target_cycles
        print(f"partitioned: done at cycle {done_cycle} "
              f"(cycle error {err:.2%}), checksum={checksum}, "
              f"simulation rate {result.rate_mhz:.2f} MHz, "
              f"{result.tokens_transferred} tokens crossed the link")
        assert checksum == sum(range(1, 31))


if __name__ == "__main__":
    main()
