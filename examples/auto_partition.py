#!/usr/bin/env python3
"""Automatic partitioning + deployment planning (the paper's Sec. VIII
future-work features, implemented).

1. let the graph-partitioning search pick the FPGA boundaries of a
   6-core ring SoC instead of naming modules by hand,
2. compile and co-simulate the result over three transports — direct
   QSFP, peer-to-peer PCIe, and switched Ethernet (which frees the
   topology from the U250's two QSFP cages),
3. ask the hybrid cloud/on-prem planner where to run the campaign.

Run:  python examples/auto_partition.py
"""

from repro.fireripper import FAST, FireRipper, auto_partition
from repro.harness import ConstantSource
from repro.harness.partitioned import Partition, PartitionedSimulation
from repro.libdn import LIBDNHost
from repro.platform import (
    Campaign,
    PCIE_P2P,
    QSFP_AURORA,
    format_plan,
    make_switched_links,
)
from repro.rtl import Simulator
from repro.targets.soc import make_ring_noc_soc


def build_ethernet_sim(design):
    links, fabric = make_switched_links(design.plan.links)
    partitions, sources = [], {}
    for name, circuit in design.partitions.items():
        chans = design.plan.channels[name]
        host = LIBDNHost(Simulator(circuit), chans.in_specs,
                         chans.out_specs, name=name)
        partitions.append(Partition(name, host, 30.0))
        for chan_name in chans.external_in:
            spec = next(s for s in chans.in_specs if s.name == chan_name)
            sources[(name, chan_name)] = ConstantSource(
                {p: 0 for p in spec.port_names})
    return PartitionedSimulation(partitions, links, sources=sources,
                                 seed_boundary=True), fabric


def main():
    circuit = make_ring_noc_soc(6, messages_per_tile=3)
    print("searching for a 3-FPGA partition of the 6-core ring SoC...")
    result = auto_partition(
        circuit, n_fpgas=3, mode=FAST,
        keep_in_base=["tile6", "conv6", "router6"])
    print(result.to_text())

    design = FireRipper(result.spec).compile(circuit)
    print("\nco-simulating the chosen partition over three transports:")
    for transport in (QSFP_AURORA, PCIE_P2P):
        sim = design.build_simulation(transport, host_freq_mhz=30.0)
        rate = sim.run(300).rate_mhz
        print(f"  {transport.name:<24} {rate:6.2f} MHz")
    eth_sim, fabric = build_ethernet_sim(design)
    rate = eth_sim.run(300).rate_mhz
    print(f"  {'ethernet_100g_switched':<24} {rate:6.2f} MHz "
          f"({fabric.tokens} tokens through the shared switch)")

    print("\nwhere should the benchmark campaign run?\n")
    print(format_plan(Campaign(fpgas_per_sim=3, dev_hours=2_000,
                               bench_sim_hours=4_000,
                               bench_parallelism=8)))


if __name__ == "__main__":
    main()
