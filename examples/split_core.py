#!/usr/bin/env python3
"""Splitting a too-big core across two FPGAs (the Sec. V-B story).

Walks the GC40 BOOM decision sequence: estimate the core's FPGA
footprint from its Table-I parameters, watch the monolithic build fail
the congestion check, split at the backend/frontend point, verify both
halves fit, then exact-mode co-simulate an RTL-tier design with the same
>7000-bit boundary to see the achievable rate.

Run:  python examples/split_core.py
"""

from repro.errors import ResourceError
from repro.experiments import casestudy_gc40
from repro.fireripper import EXACT, FireRipper, PartitionGroup, PartitionSpec
from repro.platform import QSFP_AURORA, XILINX_U250, FPGAResources
from repro.platform.estimate import core_area_to_luts
from repro.targets.soc import make_wide_pair
from repro.uarch.params import GC40_BOOM, LARGE_BOOM


def main():
    print("Table I parameters -> area model -> FPGA footprint\n")
    for core in (LARGE_BOOM, GC40_BOOM):
        area = core.area_mm2()
        luts = core.fpga_luts()
        frac = luts / XILINX_U250.usable.luts
        print(f"  {core.name:<12} {area:5.2f} mm^2  "
              f"{luts / 1e6:5.2f} M LUTs  ({frac:4.0%} of a U250)")

    print("\nattempting a monolithic GC40 build on one U250...")
    try:
        XILINX_U250.check_fit(
            FPGAResources(luts=GC40_BOOM.fpga_luts()),
            label="monolithic GC40 BOOM")
        print("  unexpectedly fits!")
    except ResourceError as exc:
        print(f"  FAILS: {exc}")

    print("\nsplitting at the paper's point "
          "(backend+LSU | frontend+memory):")
    result = casestudy_gc40.run()
    print(f"  backend partition:  {result.backend_util:.0%} of U250 LUTs")
    print(f"  frontend partition: {result.frontend_util:.0%} of U250 LUTs")
    print(f"  boundary width:     {result.boundary_bits} bits")

    print("\nexact-mode co-simulation at that boundary width:")
    circuit = make_wide_pair(result.boundary_bits // 2,
                             comb_boundary=True)
    spec = PartitionSpec(mode=EXACT, groups=[
        PartitionGroup.make("backend", ["right"])])
    design = FireRipper(spec).compile(circuit)
    sim = design.build_simulation(QSFP_AURORA, host_freq_mhz=30.0)
    run = sim.run(100)
    print(f"  measured {run.rate_mhz:.3f} MHz "
          f"(paper achieved 0.2 MHz booting Linux on the real split)")


if __name__ == "__main__":
    main()
